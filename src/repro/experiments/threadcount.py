"""Thread-count scaling: SOE throughput and fairness beyond two threads.

The related work the paper builds on (Eickemeyer et al.) found that SOE
reaches its maximum throughput at about three threads: with enough
threads, every miss's latency is fully hidden by the other threads'
execution, and more contexts only add switch overhead. The fairness
mechanism itself is N-ary (Eqs. 4 and 9 quantify over all thread
pairs), so this experiment also checks that enforcement holds as the
thread count grows.

Workload: memory-bound threads (short CPM relative to the miss
latency), the regime where extra threads pay off, plus one compute
thread to make the fairness problem appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.controller import FairnessController, FairnessParams
from repro.engine.singlethread import run_single_thread
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.synthetic import uniform_stream

__all__ = ["ThreadCountRow", "ThreadCountResult", "run", "render"]

#: Memory-bound behaviour: CPM ~150 cycles vs 300-cycle misses, so a
#: single partner thread cannot hide a whole miss and a third thread
#: still adds coverage.
MEMORY_IPC = 2.0
MEMORY_IPM = 300.0
#: The compute thread that starves the others without enforcement.
COMPUTE_IPC = 2.6
COMPUTE_IPM = 30_000.0


@dataclass(frozen=True)
class ThreadCountRow:
    num_threads: int
    total_ipc: float
    idle_fraction: float
    fairness_unenforced: float
    fairness_enforced: float


@dataclass(frozen=True)
class ThreadCountResult:
    fairness_target: float
    rows: list[ThreadCountRow]

    def throughput_series(self) -> list[float]:
        return [row.total_ipc for row in self.rows]

    def saturation_point(self, tolerance: float = 0.05) -> int:
        """Smallest thread count within ``tolerance`` of the maximum
        throughput (Eickemeyer's ~3 threads)."""
        peak = max(self.throughput_series())
        for row in self.rows:
            if row.total_ipc >= peak * (1.0 - tolerance):
                return row.num_threads
        return self.rows[-1].num_threads  # pragma: no cover


def _memory_streams(num_threads: int, seed_base: int = 0) -> list[SegmentStream]:
    """Pure memory-bound mix: the regime where thread count pays off."""
    return [
        uniform_stream(MEMORY_IPC, MEMORY_IPM, ipm_cv=0.4,
                       seed=seed_base + 50 + index, name=f"memory{index}")
        for index in range(num_threads)
    ]


def _mixed_streams(num_threads: int, seed_base: int = 0) -> list[SegmentStream]:
    """One compute thread + N-1 memory threads: the fairness stressor."""
    streams = [
        uniform_stream(COMPUTE_IPC, COMPUTE_IPM, ipm_cv=0.5,
                       seed=seed_base + 41, name="compute"),
    ]
    streams.extend(_memory_streams(num_threads - 1, seed_base))
    return streams


def run(
    thread_counts: Sequence[int] = (2, 3, 4, 5, 6),
    fairness_target: float = 0.5,
    min_instructions: Optional[float] = None,
    warmup_instructions: Optional[float] = None,
    config: Optional[EvalConfig] = None,
) -> ThreadCountResult:
    if min_instructions is None:
        min_instructions = (
            config.min_instructions if config is not None else 800_000.0
        )
    if warmup_instructions is None:
        warmup_instructions = (
            config.warmup_instructions if config is not None else 600_000.0
        )
    seed_base = 2 * config.seed if config is not None else 0
    params = SoeParams()
    limits = RunLimits(
        min_instructions=min_instructions,
        warmup_instructions=warmup_instructions,
    )
    rows = []
    for count in thread_counts:
        # Throughput scaling on the homogeneous memory-bound mix.
        throughput_run = run_soe(
            _memory_streams(count, seed_base), None, params, limits
        )

        # Fairness behaviour on the heterogeneous mix.
        ipc_st = [
            run_single_thread(s, params.miss_lat, min_instructions=min_instructions).ipc
            for s in _mixed_streams(count, seed_base)
        ]
        unenforced = run_soe(
            _mixed_streams(count, seed_base), None, params, limits
        )
        controller = FairnessController(
            count, FairnessParams(fairness_target=fairness_target)
        )
        enforced = run_soe(
            _mixed_streams(count, seed_base), controller, params, limits
        )
        rows.append(
            ThreadCountRow(
                num_threads=count,
                total_ipc=throughput_run.total_ipc,
                idle_fraction=throughput_run.idle_cycles / throughput_run.cycles,
                fairness_unenforced=unenforced.achieved_fairness(ipc_st),
                fairness_enforced=enforced.achieved_fairness(ipc_st),
            )
        )
    return ThreadCountResult(fairness_target=fairness_target, rows=rows)


def render(result: ThreadCountResult) -> str:
    rows = [
        [
            row.num_threads,
            f"{row.total_ipc:.3f}",
            f"{row.idle_fraction:.1%}",
            f"{row.fairness_unenforced:.3f}",
            f"{row.fairness_enforced:.3f}",
        ]
        for row in result.rows
    ]
    from repro.metrics.ascii_chart import line_chart

    chart = line_chart(
        {"IPC_SOE": result.throughput_series()},
        x_values=[float(row.num_threads) for row in result.rows],
        y_label="memory-bound throughput (x axis: thread count)",
        height=10,
        width=40,
    )
    return (
        format_table(
            ["threads", "IPC_SOE (F=0)", "idle", "fairness (F=0)",
             f"fairness (F={result.fairness_target:g})"],
            rows,
            title=(
                "Thread-count scaling (throughput: N memory-bound threads; "
                "fairness: 1 compute + N-1 memory)"
            ),
        )
        + f"\nthroughput saturates at {result.saturation_point()} threads "
        + "(related work: ~3)\n\n"
        + chart
    )
