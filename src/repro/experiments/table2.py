"""Table 2 / Example 2: two-thread SOE with and without enforcement.

The paper's running example: both threads retire 2.5 instructions per
cycle between misses; thread 1 misses every 15,000 instructions, thread
2 every 1,000; memory latency 300 cycles, switch latency 25. The table
reports each thread's single-thread IPC, its SOE IPC and speedup at
F = 0, 1/2 and 1, the enforced quotas, and the resulting fairness.

This module reproduces the table twice -- from the closed-form model
(Section 2) and from the segment engine with the full runtime mechanism
(counters, Delta sampling, deficit counting) -- so the two can be
compared directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.controller import FairnessController, FairnessParams
from repro.core.model import SoeModel, ThreadParams
from repro.engine.singlethread import run_single_thread
from repro.engine.segments import SegmentStream
from repro.engine.soe import RunLimits, SoeParams, run_soe
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.synthetic import uniform_stream

__all__ = ["Table2Row", "Table2Result", "run", "render"]

#: Example 2 parameters, straight from the paper.
IPC_NO_MISS = 2.5
IPM = (15_000.0, 1_000.0)
MISS_LAT = 300.0
SWITCH_LAT = 25.0
FAIRNESS_LEVELS = (0.0, 0.5, 1.0)


@dataclass(frozen=True)
class Table2Row:
    """One (fairness level, thread) cell group of the table."""

    fairness_target: float
    thread: int
    ipc_st: float
    ipc_soe: float
    quota: float

    @property
    def speedup(self) -> float:
        return self.ipc_soe / self.ipc_st

    @property
    def slowdown_factor(self) -> float:
        """The paper quotes IPC drops as factors (1.02x, 9.2x...)."""
        return self.ipc_st / self.ipc_soe if self.ipc_soe > 0 else math.inf


@dataclass(frozen=True)
class Table2Result:
    analytical: list[Table2Row]
    simulated: list[Table2Row]

    def fairness(self, rows: list[Table2Row], level: float) -> float:
        # repro-lint: disable=RL004 - levels are identical config constants
        speedups = [r.speedup for r in rows if r.fairness_target == level]
        return min(speedups) / max(speedups)


def _model_rows() -> list[Table2Row]:
    model = SoeModel(
        [ThreadParams(IPC_NO_MISS, IPM[0]), ThreadParams(IPC_NO_MISS, IPM[1])],
        miss_lat=MISS_LAT,
        switch_lat=SWITCH_LAT,
    )
    st = model.single_thread_ipcs()
    rows = []
    for level in FAIRNESS_LEVELS:
        soe = model.soe_ipcs(level)
        quotas = model.quotas(level)
        for tid in range(2):
            rows.append(
                Table2Row(level, tid, st[tid], soe[tid], quotas[tid])
            )
    return rows


def _streams(seed_base: int = 0) -> list[SegmentStream]:
    return [
        uniform_stream(IPC_NO_MISS, IPM[0], seed=seed_base + 1),
        uniform_stream(IPC_NO_MISS, IPM[1], seed=seed_base + 2),
    ]


def _simulated_rows(
    min_instructions: float, warmup: float, seed_base: int = 0
) -> list[Table2Row]:
    st = [
        run_single_thread(s, miss_lat=MISS_LAT, min_instructions=min_instructions).ipc
        for s in _streams(seed_base)
    ]
    rows = []
    params = SoeParams(miss_lat=MISS_LAT, switch_lat=SWITCH_LAT)
    for level in FAIRNESS_LEVELS:
        if level > 0:
            controller = FairnessController(
                2, FairnessParams(fairness_target=level, miss_lat=MISS_LAT)
            )
            quota_source = controller
        else:
            controller = None
            quota_source = None
        result = run_soe(
            _streams(seed_base),
            controller,
            params,
            RunLimits(min_instructions=min_instructions, warmup_instructions=warmup),
        )
        quotas = quota_source.quotas if quota_source else [math.inf, math.inf]
        for tid in range(2):
            rows.append(Table2Row(level, tid, st[tid], result.ipcs[tid], quotas[tid]))
    return rows


def run(
    min_instructions: Optional[float] = None,
    warmup: Optional[float] = None,
    config: Optional[EvalConfig] = None,
) -> Table2Result:
    """Compute Table 2 analytically and by simulation.

    Run lengths and the stream seed come from ``config`` when given
    (Example 2's machine constants stay fixed -- they define the
    example); explicit arguments win over the configuration.
    """
    if min_instructions is None:
        min_instructions = (
            config.min_instructions if config is not None else 1_500_000.0
        )
    if warmup is None:
        warmup = (
            config.warmup_instructions if config is not None else 1_000_000.0
        )
    seed_base = 2 * config.seed if config is not None else 0
    return Table2Result(
        analytical=_model_rows(),
        simulated=_simulated_rows(min_instructions, warmup, seed_base),
    )


def render(result: Table2Result) -> str:
    """Human-readable rendition of both tables."""
    sections = []
    for label, rows in (("analytical model", result.analytical),
                        ("segment engine", result.simulated)):
        table_rows = []
        for row in rows:
            quota = "-" if math.isinf(row.quota) else f"{row.quota:,.0f}"
            table_rows.append(
                [
                    f"{row.fairness_target:g}",
                    row.thread + 1,
                    f"{row.ipc_st:.3f}",
                    f"{row.ipc_soe:.3f}",
                    f"{row.speedup:.3f}",
                    f"{row.slowdown_factor:.2f}x",
                    quota,
                ]
            )
        fair = "  ".join(
            f"F={lvl:g}: {result.fairness(rows, lvl):.3f}" for lvl in FAIRNESS_LEVELS
        )
        sections.append(
            format_table(
                ["F", "thread", "IPC_ST", "IPC_SOE", "speedup", "slowdown", "IPSw"],
                table_rows,
                title=f"Table 2 ({label}) -- achieved fairness: {fair}",
            )
        )
    return "\n\n".join(sections)
