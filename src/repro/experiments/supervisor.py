"""Supervised task execution: process-per-task with timeout and retry.

The grid's former ``pool.map`` had no answer to a crashed, hung, or
lying worker: one bad task aborted (or wedged) the whole sweep. This
module replaces it with a *supervisor* that runs each task in its own
short-lived process and watches it:

* **Timeout** -- each attempt gets a wall-clock budget
  (``task_timeout``); a hung worker is terminated and the task
  reclassified as :class:`~repro.errors.TaskTimeout`. The clock guards
  only the supervisor -- results never observe it, so a timed-out-and-
  retried task is still bit-identical.
* **Retry** -- every failure is retried up to ``retries`` times with
  deterministic, attempt-counted accounting. An optional exponential
  backoff (``retry_backoff``) delays each retry by a deterministic,
  *seeded-jitter* amount -- a pure function of ``(seed, task index,
  attempt)``, never of the wall clock or a global RNG -- so retry
  schedules are reproducible while still decorrelating storms of
  failing tasks. Backoff only decides *when* a retry launches, never
  what it computes: results stay bit-identical with any backoff.
  Each retry respawns a fresh process, so a dead worker is always
  replaced.
* **Classification** -- failures map onto the typed taxonomy in
  :mod:`repro.errors` (``TaskTimeout``/``WorkerCrash``/
  ``InvariantViolation``/generic task errors) and are reported as
  ``task_retry``/``task_failed`` trace events and in the run's failure
  manifest.
* **Invariant check** -- results are structurally validated (finite
  floats all the way down) before being accepted, so a worker that
  *returns* garbage is treated exactly like one that crashed.
* **Drain** -- SIGINT/SIGTERM request a drain: no new tasks launch,
  in-flight tasks finish and are journaled, and the run reports itself
  interrupted instead of dying mid-write. A second SIGINT kills
  in-flight work immediately.

Determinism: results are collected by task index, every task is a pure
function of its spec, and the supervisor only decides *whether* and
*when* a task runs -- never what it computes -- so any schedule
(including one with retries) yields bit-identical results.

Two isolation modes share the watching machinery:

* **process-per-task** (the default) -- every attempt gets a fresh
  process, so import/startup cost is paid per task but nothing leaks
  between attempts;
* **persistent pool** (``pool=True``) -- long-lived workers import once
  and serve many tasks over the same pipe, which is what the sharded
  batch dispatch wants (a shard is seconds of work; a fresh interpreter
  per shard would dominate). Supervision is unchanged: a worker that
  crashes, hangs past the task timeout, or reports garbage is killed
  and **respawned**, and the task it held is retried under the same
  deterministic accounting as the per-task path.

Either way, worker messages travel as length-prefixed frames (one
``send_bytes`` of a ``pickle.HIGHEST_PROTOCOL`` payload), so a reader
observes either a complete message or a torn frame -- and a torn frame
raises immediately (``OSError``/``EOFError``), classifying as a
:class:`~repro.errors.WorkerCrash` instead of hanging the supervisor.

This module is wall-clock exempt (RL002) alongside the runner: its
clocks bound supervision (timeouts, liveness polling) and never feed
simulation results.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, fields, is_dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    classify_failure,
)
from repro.telemetry import RUNNER as _TRACE_RUNNER
from repro.telemetry import current_sink
from repro.telemetry.events import task_failed, task_retry

__all__ = [
    "SupervisionPolicy",
    "TaskFailure",
    "SupervisedRun",
    "Supervisor",
    "TaskPool",
    "PoolEvent",
    "backoff_delay",
    "check_invariants",
]

#: How long the supervisor blocks waiting for worker messages before
#: re-checking deadlines and drain requests.
_POLL_SECONDS = 0.2

#: Grace given to ``terminate()`` before escalating to ``kill()``.
_TERM_GRACE_SECONDS = 2.0


@dataclass(frozen=True)
class SupervisionPolicy:
    """How failures are bounded: per-attempt timeout, retries, backoff."""

    #: Wall-clock seconds one attempt may run (None = no timeout).
    task_timeout: Optional[float] = None
    #: Extra attempts after the first failure (0 = fail fast).
    retries: int = 2
    #: Base seconds of the deterministic exponential retry backoff
    #: (0 = respawn immediately, the historical behavior). Attempt
    #: ``n``'s retry is delayed by ``backoff_delay(retry_backoff, n,
    #: index=task_index, seed=backoff_seed)``.
    retry_backoff: float = 0.0
    #: Seed of the deterministic backoff jitter (see :func:`backoff_delay`).
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError("task timeout must be positive seconds")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry backoff must be >= 0 seconds")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay_for(self, index: int, attempt: int) -> float:
        """Backoff before the retry that follows failed ``attempt``."""
        return backoff_delay(
            self.retry_backoff, attempt, index=index, seed=self.backoff_seed
        )


def backoff_delay(
    base: float, attempt: int, *, index: int = 0, seed: int = 0
) -> float:
    """Deterministic exponential backoff with seeded jitter (seconds).

    The delay before the retry following failed ``attempt`` (1-based)
    doubles per attempt and carries an *equal-jitter* factor in
    ``[0.5, 1.0)`` derived from ``sha256(seed, index, attempt)`` --
    a pure function of its arguments, so retry schedules are exactly
    reproducible (no RNG state, no wall clock) while simultaneously
    failing tasks still spread out instead of thundering back in
    lockstep.
    """
    if base <= 0.0 or attempt < 1:
        return 0.0
    window = base * (2.0 ** (attempt - 1))
    digest = hashlib.sha256(
        f"repro-backoff-{seed}-{index}-{attempt}".encode()
    ).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2.0**64
    return window * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget (manifest entry)."""

    index: int
    kind: str
    label: str
    reason: str  #: one of :data:`repro.errors.FAILURE_REASONS`
    message: str
    attempts: int
    #: The original exception, when the failure happened in-process
    #: (inline mode); lets thin wrappers re-raise it unchanged.
    error: Optional[BaseException] = None

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "reason": self.reason,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class SupervisedRun:
    """Everything one supervised execution produced."""

    #: task index -> raw result (only indices that succeeded)
    results: dict
    failures: List[TaskFailure]
    #: indices that never ran because a drain was requested
    skipped: List[int]
    interrupted: bool = False
    #: total retry attempts consumed across all tasks
    retries: int = 0


def check_invariants(value: object, _path: str = "result") -> None:
    """Validate a task result: every float is finite, recursively.

    Raises :class:`~repro.errors.InvariantViolation` naming the first
    offending field. Simulation results are counters and rates -- a NaN
    or infinity anywhere means the producing run was corrupt, and
    accepting it would poison every figure derived from the grid.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return
    if isinstance(value, float):
        if not math.isfinite(value):
            raise InvariantViolation(
                f"non-finite value {value!r} at {_path}"
            )
        return
    if is_dataclass(value) and not isinstance(value, type):
        for field in fields(value):
            check_invariants(
                getattr(value, field.name), f"{_path}.{field.name}"
            )
        return
    if isinstance(value, (list, tuple)):
        for position, element in enumerate(value):
            check_invariants(element, f"{_path}[{position}]")
        return
    if isinstance(value, dict):
        for key, element in value.items():
            check_invariants(element, f"{_path}[{key!r}]")
        return


def _default_descriptor(item: object) -> Tuple[str, str]:
    return "task", type(item).__name__


def _send_frame(
    conn: multiprocessing.connection.Connection, message: object
) -> None:
    """Write one length-prefixed message frame.

    ``send_bytes`` prefixes the payload with its size, so the reader
    either receives the complete pickle or fails loudly mid-frame; the
    payload itself is serialized once with ``pickle.HIGHEST_PROTOCOL``
    (the default ``Connection.send`` re-pickles at the legacy default
    protocol, which is markedly slower for the array-heavy results the
    sharded batch path returns).
    """
    conn.send_bytes(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def _recv_frame(conn: multiprocessing.connection.Connection) -> object:
    """Read one framed message; raises ``EOFError`` on a clean close
    and ``OSError`` on a frame torn by a mid-write crash."""
    return pickle.loads(conn.recv_bytes())


#: Worker-message failures that classify as a crash: a clean EOF (the
#: worker died before writing), a torn frame (it died mid-write), or a
#: frame whose bytes do not decode (it died scribbling).
_FRAME_ERRORS = (EOFError, OSError, pickle.UnpicklingError)


def _child_main(
    conn: multiprocessing.connection.Connection,
    call: Callable,
    index: int,
    attempt: int,
    item: object,
) -> None:
    """Entry point of one task process.

    Reports exactly one message on ``conn``: ``("ok", result)`` or
    ``("error", reason, message, traceback)``. Dying without reporting
    *is* the crash signal the parent watches for. SIGINT is ignored so
    a terminal Ctrl-C (delivered to the whole foreground process group)
    lets the parent drain in-flight work instead of killing it.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    status = 0
    try:
        plan = faults.current_plan()
        plan.on_task_start(index, attempt)
        result = plan.mutate_result(index, attempt, call(item))
        _send_frame(conn, ("ok", result))
    except BaseException as error:  # the parent does the classifying
        status = 1
        try:
            _send_frame(
                conn,
                (
                    "error",
                    classify_failure(error),
                    f"{type(error).__name__}: {error}",
                    traceback.format_exc(),
                ),
            )
        except (OSError, ValueError):  # parent gone / pipe closed
            pass
    finally:
        try:
            conn.close()
        finally:
            os._exit(status)


def _pool_worker_main(
    conn: multiprocessing.connection.Connection, call: Callable
) -> None:
    """Entry point of one persistent pool worker.

    Serves ``(index, attempt, item)`` request frames until the parent
    sends the ``None`` shutdown frame (or closes the pipe), answering
    each with the same one-message protocol as :func:`_child_main`.
    The fault-plan hooks run per served task, so an injected crash or
    hang fires inside the pool worker exactly as it would in a
    process-per-task child -- the parent detects the dead/stuck worker,
    respawns it, and retries the task it held.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            request = _recv_frame(conn)
        except _FRAME_ERRORS:  # parent gone; nothing left to serve
            os._exit(0)
        if request is None:
            break
        index, attempt, item = request
        try:
            plan = faults.current_plan()
            plan.on_task_start(index, attempt)
            result = plan.mutate_result(index, attempt, call(item))
            message: tuple = ("ok", result)
        except BaseException as error:  # the parent does the classifying
            message = (
                "error",
                classify_failure(error),
                f"{type(error).__name__}: {error}",
                traceback.format_exc(),
            )
        try:
            _send_frame(conn, message)
        except (OSError, ValueError):  # parent gone / pipe closed
            os._exit(1)
    try:
        conn.close()
    finally:
        os._exit(0)


@dataclass
class _Running:
    """Book-keeping for one in-flight task process."""

    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    index: int
    item: object
    attempt: int
    deadline: Optional[float]


@dataclass
class _PoolWorker:
    """One persistent pool worker and the task it currently holds.

    ``index``/``item``/``attempt``/``deadline`` mirror :class:`_Running`
    while a task is in flight (the retry accounting reads them through
    the same duck-typed surface) and are cleared when the worker goes
    idle.
    """

    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    index: int = -1
    item: object = None
    attempt: int = 0
    deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.attempt > 0

    def clear(self) -> None:
        self.index = -1
        self.item = None
        self.attempt = 0
        self.deadline = None


class Supervisor:
    """Runs indexed tasks under a :class:`SupervisionPolicy`.

    ``tasks`` is a sequence of ``(index, item)`` pairs -- indices are
    caller-owned (the grid keeps its deterministic decomposition order
    stable across resumes) and are the coordinates fault injection and
    checkpoint records use.

    Isolation is automatic: tasks run in per-task processes when
    concurrency, a timeout, or an active process-level fault plan
    demands it, and inline (zero overhead, exceptions classified but
    never retried -- pure tasks fail deterministically) otherwise.
    ``pool=True`` swaps the per-task processes for persistent workers
    that serve many tasks each (crashed or hung workers are respawned);
    it changes only *where* a task runs, never what it computes.
    """

    def __init__(
        self,
        call: Callable,
        tasks: Sequence[Tuple[int, object]],
        *,
        jobs: int = 1,
        policy: Optional[SupervisionPolicy] = None,
        descriptor: Callable[[object], Tuple[str, str]] = _default_descriptor,
        validate: Callable[[object], None] = check_invariants,
        on_result: Optional[Callable[[int, object, object], None]] = None,
        pool: bool = False,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be a positive process count")
        self._call = call
        self._tasks = list(tasks)
        self._jobs = jobs
        self._policy = policy if policy is not None else SupervisionPolicy()
        self._descriptor = descriptor
        self._validate = validate
        self._on_result = on_result
        self._pool = pool
        self._drain = False
        self._hard_abort = False
        self._signals = 0
        #: retries waiting out their backoff: (ready_at, seq, index,
        #: item, attempt); ``seq`` keeps equal deadlines FIFO-stable.
        self._delayed: List[tuple] = []
        self._delay_seq = 0

    # -- external control ------------------------------------------------

    def request_drain(self) -> None:
        """Stop launching new tasks; let in-flight tasks finish."""
        self._drain = True

    def _on_signal(self, signum: int, frame: object) -> None:
        self._signals += 1
        self._drain = True
        if self._signals >= 2:
            self._hard_abort = True

    # -- execution -------------------------------------------------------

    def run(self) -> SupervisedRun:
        """Execute every task; returns results, failures, and skips."""
        run = SupervisedRun(results={}, failures=[], skipped=[])
        if not self._tasks:
            return run
        use_processes = (
            self._jobs > 1
            or self._policy.task_timeout is not None
            or any(
                spec.kind in ("crash", "hang", "nan")
                for spec in faults.current_plan().specs
            )
        )
        installed = self._install_signal_handlers()
        try:
            if use_processes and self._pool:
                self._run_pool(run)
            elif use_processes:
                self._run_isolated(run)
            else:
                self._run_inline(run)
        finally:
            self._restore_signal_handlers(installed)
        run.interrupted = self._drain and bool(run.skipped or self._signals)
        return run

    def _install_signal_handlers(self) -> list:
        if threading.current_thread() is not threading.main_thread():
            return []
        previous = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous.append((signum, signal.signal(signum, self._on_signal)))
        return previous

    def _restore_signal_handlers(self, previous: list) -> None:
        for signum, handler in previous:
            signal.signal(signum, handler)

    # -- inline mode -----------------------------------------------------

    def _run_inline(self, run: SupervisedRun) -> None:
        for index, item in self._tasks:
            if self._drain:
                run.skipped.append(index)
                continue
            try:
                result = self._call(item)
                self._validate(result)
            except Exception as error:  # classified, surfaces in manifest
                self._record_failure(
                    run,
                    index,
                    item,
                    attempt=1,
                    reason=classify_failure(error),
                    message=f"{type(error).__name__}: {error}",
                    error=error,
                )
                continue
            self._accept(run, index, item, result)

    # -- delayed retries (backoff) ----------------------------------------

    def _defer_retry(self, index: int, item: object, attempt: int,
                     delay: float) -> None:
        """Park a retry until its backoff elapses."""
        self._delay_seq += 1
        self._delayed.append(
            (time.monotonic() + delay, self._delay_seq, index, item, attempt)
        )

    def _release_due(self, pending: deque) -> None:
        """Move delayed retries whose backoff elapsed into ``pending``.

        A drain releases everything immediately: the launcher will not
        start them, so they land in the run's ``skipped`` accounting
        instead of stranding the loop on a sleeping retry.
        """
        if not self._delayed:
            return
        now = time.monotonic()
        due = [
            entry for entry in self._delayed
            if self._drain or entry[0] <= now
        ]
        if not due:
            return
        for entry in sorted(due):
            _ready, _seq, index, item, attempt = entry
            pending.append((index, item, attempt))
        self._delayed = [e for e in self._delayed if e not in due]

    def _next_backoff_wait(self, ceiling: float) -> float:
        """Cap a poll wait so the earliest delayed retry is not missed."""
        if not self._delayed:
            return ceiling
        now = time.monotonic()
        earliest = min(entry[0] for entry in self._delayed)
        return min(ceiling, max(earliest - now, 0.0))

    def _sleep_until_due(self) -> None:
        """Idle wait (nothing running) for the next delayed retry."""
        wait = self._next_backoff_wait(_POLL_SECONDS)
        if wait > 0:
            time.sleep(wait)

    # -- isolated (process-per-task) mode --------------------------------

    def _run_isolated(self, run: SupervisedRun) -> None:
        pending: deque = deque(
            (index, item, 1) for index, item in self._tasks
        )
        running: List[_Running] = []
        while pending or running or self._delayed:
            if self._hard_abort:
                for task in running:
                    self._kill(task)
                    self._record_failure(
                        run,
                        task.index,
                        task.item,
                        attempt=task.attempt,
                        reason="crash",
                        message="killed by repeated interrupt",
                    )
                running.clear()
                self._drain = True
            self._release_due(pending)
            while pending and len(running) < self._jobs and not self._drain:
                running.append(self._launch(*pending.popleft()))
            if not running:
                if self._drain:
                    break
                if not pending and self._delayed:
                    self._sleep_until_due()
                    continue
                if not pending:
                    break
                continue
            self._poll(run, running, pending)
        self._release_due(pending)
        while pending:
            index, _item, _attempt = pending.popleft()
            run.skipped.append(index)
        run.skipped.sort()

    def _launch(self, index: int, item: object, attempt: int) -> _Running:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_child_main,
            args=(child_conn, self._call, index, attempt, item),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self._policy.task_timeout
            if self._policy.task_timeout is not None
            else None
        )
        return _Running(
            process=process,
            conn=parent_conn,
            index=index,
            item=item,
            attempt=attempt,
            deadline=deadline,
        )

    def _poll(
        self, run: SupervisedRun, running: List[_Running], pending: deque
    ) -> None:
        wait_for = self._next_backoff_wait(_POLL_SECONDS)
        now = time.monotonic()
        for task in running:
            if task.deadline is not None:
                wait_for = min(wait_for, max(task.deadline - now, 0.0))
        try:
            ready = multiprocessing.connection.wait(
                [task.conn for task in running], timeout=wait_for
            )
        except InterruptedError:  # pragma: no cover - signal during wait
            ready = []
        now = time.monotonic()
        finished: List[_Running] = []
        for task in running:
            if task.conn in ready:
                finished.append(task)
                self._collect(run, pending, task)
            elif task.deadline is not None and now >= task.deadline:
                finished.append(task)
                self._kill(task)
                self._retry_or_fail(
                    run,
                    pending,
                    task,
                    reason="timeout",
                    message=(
                        f"attempt {task.attempt} exceeded the "
                        f"{self._policy.task_timeout:g}s task timeout"
                    ),
                )
            elif not task.process.is_alive():
                # Exited between wait() and this liveness check. A
                # result it managed to send is still buffered in the
                # pipe, so collect first -- only an empty, closed pipe
                # (EOFError in recv) is the crash signal.
                finished.append(task)
                self._collect(run, pending, task)
        for task in finished:
            running.remove(task)

    def _collect(
        self, run: SupervisedRun, pending: deque, task: _Running
    ) -> None:
        try:
            message = _recv_frame(task.conn)
        except _FRAME_ERRORS:
            message = None
        task.conn.close()
        task.process.join()
        if message is None:
            self._retry_or_fail(
                run,
                pending,
                task,
                reason="crash",
                message=(
                    "worker died with exitcode "
                    f"{task.process.exitcode} before reporting a result"
                ),
            )
            return
        self._handle_message(run, pending, task, message)

    def _handle_message(
        self,
        run: SupervisedRun,
        pending: deque,
        task: Union[_Running, _PoolWorker],
        message: tuple,
    ) -> None:
        """Accept / retry / fail from one complete worker message."""
        if message[0] == "ok":
            result = message[1]
            try:
                self._validate(result)
            except InvariantViolation as error:
                self._retry_or_fail(
                    run, pending, task, reason="invariant", message=str(error)
                )
                return
            self._accept(run, task.index, task.item, result)
            return
        _tag, reason, text, _trace = message
        self._retry_or_fail(run, pending, task, reason=reason, message=text)

    def _kill(self, task: Union[_Running, _PoolWorker]) -> None:
        task.conn.close()
        process = task.process
        if process.is_alive():
            process.terminate()
            process.join(_TERM_GRACE_SECONDS)
            if process.is_alive():  # pragma: no cover - stuck in kernel
                process.kill()
                process.join()
        else:
            process.join()

    # -- persistent pool mode --------------------------------------------

    def _spawn_worker(self) -> _PoolWorker:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_pool_worker_main,
            args=(child_conn, self._call),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process=process, conn=parent_conn)

    def _assign(
        self,
        run: SupervisedRun,
        pending: deque,
        workers: List[_PoolWorker],
        worker: _PoolWorker,
        index: int,
        item: object,
        attempt: int,
    ) -> None:
        worker.index = index
        worker.item = item
        worker.attempt = attempt
        worker.deadline = (
            time.monotonic() + self._policy.task_timeout
            if self._policy.task_timeout is not None
            else None
        )
        try:
            _send_frame(worker.conn, (index, attempt, item))
        except (OSError, ValueError):
            # The worker died between tasks; this attempt never started,
            # but counting it keeps the retry budget a hard bound.
            self._retire_worker(workers, worker)
            self._retry_or_fail(
                run,
                pending,
                worker,
                reason="crash",
                message="pool worker died before accepting the task",
            )

    def _retire_worker(
        self, workers: List[_PoolWorker], worker: _PoolWorker
    ) -> None:
        """Kill a worker and drop it from the pool (a replacement is
        spawned by the next scheduling pass if work remains)."""
        self._kill(worker)
        if worker in workers:
            workers.remove(worker)

    def _shutdown_worker(self, worker: _PoolWorker) -> None:
        """Graceful stop of an idle worker: shutdown frame, then reap."""
        try:
            _send_frame(worker.conn, None)
        except (OSError, ValueError):
            pass
        self._kill(worker)

    def _run_pool(self, run: SupervisedRun) -> None:
        pending: deque = deque(
            (index, item, 1) for index, item in self._tasks
        )
        workers: List[_PoolWorker] = []
        try:
            while (
                pending
                or self._delayed
                or any(worker.busy for worker in workers)
            ):
                self._release_due(pending)
                if self._hard_abort:
                    for worker in list(workers):
                        if worker.busy:
                            self._record_failure(
                                run,
                                worker.index,
                                worker.item,
                                attempt=worker.attempt,
                                reason="crash",
                                message="killed by repeated interrupt",
                            )
                        self._retire_worker(workers, worker)
                    self._drain = True
                if not self._drain:
                    wanted = min(
                        self._jobs,
                        len(pending)
                        + sum(1 for worker in workers if worker.busy),
                    )
                    while len(workers) < wanted:
                        workers.append(self._spawn_worker())
                    for worker in list(workers):
                        if pending and not worker.busy:
                            self._assign(
                                run, pending, workers, worker,
                                *pending.popleft()
                            )
                busy = [worker for worker in workers if worker.busy]
                if not busy:
                    if self._drain:
                        break
                    if not pending and self._delayed:
                        self._sleep_until_due()
                        continue
                    if not pending:
                        break
                    continue
                self._poll_pool(run, busy, pending, workers)
            self._release_due(pending)
            while pending:
                index, _item, _attempt = pending.popleft()
                run.skipped.append(index)
            run.skipped.sort()
        finally:
            for worker in list(workers):
                self._shutdown_worker(worker)
            workers.clear()

    def _poll_pool(
        self,
        run: SupervisedRun,
        busy: List[_PoolWorker],
        pending: deque,
        workers: List[_PoolWorker],
    ) -> None:
        wait_for = self._next_backoff_wait(_POLL_SECONDS)
        now = time.monotonic()
        for worker in busy:
            if worker.deadline is not None:
                wait_for = min(wait_for, max(worker.deadline - now, 0.0))
        try:
            ready = multiprocessing.connection.wait(
                [worker.conn for worker in busy], timeout=wait_for
            )
        except InterruptedError:  # pragma: no cover - signal during wait
            ready = []
        now = time.monotonic()
        for worker in busy:
            if worker.conn in ready:
                self._collect_pool(run, pending, workers, worker)
            elif worker.deadline is not None and now >= worker.deadline:
                self._retire_worker(workers, worker)
                self._retry_or_fail(
                    run,
                    pending,
                    worker,
                    reason="timeout",
                    message=(
                        f"attempt {worker.attempt} exceeded the "
                        f"{self._policy.task_timeout:g}s task timeout"
                    ),
                )
            elif not worker.process.is_alive():
                # Died between wait() and this check; a buffered result
                # frame is still collectable, so collect-first (only an
                # empty, closed pipe is the crash signal).
                self._collect_pool(run, pending, workers, worker)

    def _collect_pool(
        self,
        run: SupervisedRun,
        pending: deque,
        workers: List[_PoolWorker],
        worker: _PoolWorker,
    ) -> None:
        try:
            message = _recv_frame(worker.conn)
        except _FRAME_ERRORS:
            message = None
        if message is None:
            exitcode = worker.process.exitcode
            self._retire_worker(workers, worker)
            self._retry_or_fail(
                run,
                pending,
                worker,
                reason="crash",
                message=(
                    f"pool worker died with exitcode {exitcode} "
                    "before reporting a result"
                ),
            )
            return
        self._handle_message(run, pending, worker, message)
        worker.clear()

    # -- accounting ------------------------------------------------------

    def _accept(
        self, run: SupervisedRun, index: int, item: object, result: object
    ) -> None:
        run.results[index] = result
        if self._on_result is not None:
            self._on_result(index, item, result)

    def _retry_or_fail(
        self,
        run: SupervisedRun,
        pending: deque,
        task: _Running,
        reason: str,
        message: str,
    ) -> None:
        kind, label = self._descriptor(task.item)
        sink = current_sink()
        if task.attempt < self._policy.max_attempts and not self._drain:
            run.retries += 1
            delay = self._policy.delay_for(task.index, task.attempt)
            if sink.wants(_TRACE_RUNNER):
                sink.emit(
                    task_retry(
                        kind, label, task.attempt + 1, reason,
                        backoff_s=delay,
                    )
                )
            if delay > 0.0:
                self._defer_retry(
                    task.index, task.item, task.attempt + 1, delay
                )
            else:
                pending.append((task.index, task.item, task.attempt + 1))
            return
        self._record_failure(
            run,
            task.index,
            task.item,
            attempt=task.attempt,
            reason=reason,
            message=message,
        )

    def _record_failure(
        self,
        run: SupervisedRun,
        index: int,
        item: object,
        *,
        attempt: int,
        reason: str,
        message: str,
        error: Optional[BaseException] = None,
    ) -> None:
        kind, label = self._descriptor(item)
        sink = current_sink()
        if sink.wants(_TRACE_RUNNER):
            sink.emit(task_failed(kind, label, attempt, reason))
        run.failures.append(
            TaskFailure(
                index=index,
                kind=kind,
                label=label,
                reason=reason,
                message=message,
                attempts=attempt,
                error=error,
            )
        )


# ---------------------------------------------------------------------------
# Incremental pool: supervision for long-running callers (the service)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoolEvent:
    """One observable outcome of a :class:`TaskPool` pump pass.

    ``kind`` is ``"done"`` (``result`` holds the validated value),
    ``"failed"`` (``failure`` holds the manifest entry), or ``"retry"``
    (the task is being retried; ``attempt`` is the upcoming attempt and
    ``backoff_s`` the deterministic delay before it launches).
    """

    kind: str
    index: int
    result: object = None
    failure: Optional[TaskFailure] = None
    attempt: int = 0
    reason: str = ""
    backoff_s: float = 0.0


@dataclass
class _PoolTask:
    """One queued/delayed TaskPool entry (with per-task timeout)."""

    index: int
    item: object
    attempt: int
    timeout: Optional[float]
    ready_at: float = 0.0
    seq: int = 0


class TaskPool:
    """Supervised persistent pool with *incremental* task submission.

    :class:`Supervisor` is batch-shaped: it takes every task up front
    and returns when all of them settled -- the right surface for a
    grid, the wrong one for a long-running service whose work arrives
    one HTTP request at a time. ``TaskPool`` exposes the same
    supervision contract (persistent workers served length-prefixed
    frames, per-attempt wall-clock timeouts, bounded deterministic
    retries with seeded-jitter backoff, crash/invariant classification
    through the :mod:`repro.errors` taxonomy, ``task_retry``/
    ``task_failed`` telemetry, ambient fault-plan hooks in the workers)
    behind an event-pumped API:

    * :meth:`submit` enqueues one ``(index, item)`` task, optionally
      with a per-task timeout override (how job deadlines propagate
      down to attempts);
    * :meth:`pump` performs one scheduling + poll pass and returns the
      :class:`PoolEvent` outcomes that settled during it;
    * :meth:`close` shuts the workers down.

    Like the Supervisor, the pool only decides whether and when a task
    runs, never what it computes -- a retried task is bit-identical to
    one that succeeded first try.
    """

    def __init__(
        self,
        call: Callable,
        *,
        jobs: int = 1,
        policy: Optional[SupervisionPolicy] = None,
        descriptor: Callable[[object], Tuple[str, str]] = _default_descriptor,
        validate: Callable[[object], None] = check_invariants,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be a positive process count")
        self._call = call
        self._jobs = jobs
        self._policy = policy if policy is not None else SupervisionPolicy()
        self._descriptor = descriptor
        self._validate = validate
        self._pending: deque = deque()
        self._delayed: List[_PoolTask] = []
        self._workers: List[_PoolWorker] = []
        #: per-index timeout overrides travel with the task entry, but a
        #: retried in-flight task needs them again -- keep them here.
        self._timeouts: dict = {}
        self._seq = 0
        self._closed = False

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Tasks queued or waiting out a retry backoff."""
        return len(self._pending) + len(self._delayed)

    @property
    def in_flight(self) -> int:
        return sum(1 for worker in self._workers if worker.busy)

    @property
    def idle(self) -> bool:
        return self.pending == 0 and self.in_flight == 0

    def alive_workers(self) -> int:
        """Live worker processes (the /readyz liveness signal)."""
        return sum(
            1 for worker in self._workers if worker.process.is_alive()
        )

    # -- submission ---------------------------------------------------------

    def submit(
        self, index: int, item: object, *, timeout: Optional[float] = None
    ) -> None:
        """Enqueue one task; ``timeout`` overrides the policy's
        per-attempt budget (a job deadline propagating down)."""
        if self._closed:
            raise ConfigurationError("task pool is closed")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("task timeout must be positive seconds")
        self._timeouts[index] = timeout
        self._pending.append(
            _PoolTask(index=index, item=item, attempt=1, timeout=timeout)
        )

    # -- the pump ------------------------------------------------------------

    def pump(self, wait: float = 0.05) -> List[PoolEvent]:
        """One scheduling + poll pass; returns what settled during it."""
        if self._closed:
            raise ConfigurationError("task pool is closed")
        events: List[PoolEvent] = []
        self._release_due()
        self._assign_idle(events)
        busy = [worker for worker in self._workers if worker.busy]
        if not busy:
            if self._delayed and wait > 0:
                now = time.monotonic()
                earliest = min(task.ready_at for task in self._delayed)
                pause = min(wait, max(earliest - now, 0.0))
                if pause > 0:
                    time.sleep(pause)
            return events
        wait_for = wait
        now = time.monotonic()
        for task in self._delayed:
            wait_for = min(wait_for, max(task.ready_at - now, 0.0))
        for worker in busy:
            if worker.deadline is not None:
                wait_for = min(wait_for, max(worker.deadline - now, 0.0))
        try:
            ready = multiprocessing.connection.wait(
                [worker.conn for worker in busy], timeout=max(wait_for, 0.0)
            )
        except InterruptedError:  # pragma: no cover - signal during wait
            ready = []
        now = time.monotonic()
        for worker in busy:
            if worker.conn in ready:
                self._collect(worker, events)
            elif worker.deadline is not None and now >= worker.deadline:
                timeout = self._attempt_timeout(worker.index)
                self._retire(worker)
                self._retry_or_fail(
                    worker,
                    events,
                    reason="timeout",
                    message=(
                        f"attempt {worker.attempt} exceeded the "
                        f"{timeout:g}s task timeout"
                    ),
                )
            elif not worker.process.is_alive():
                # Died between wait() and this check; a buffered result
                # frame is still collectable (collect-first contract).
                self._collect(worker, events)
        return events

    def close(self) -> None:
        """Shut every worker down (idle ones gracefully)."""
        if self._closed:
            return
        self._closed = True
        for worker in list(self._workers):
            try:
                _send_frame(worker.conn, None)
            except (OSError, ValueError):
                pass
            self._kill(worker)
        self._workers.clear()

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _attempt_timeout(self, index: int) -> Optional[float]:
        override = self._timeouts.get(index)
        return override if override is not None else self._policy.task_timeout

    def _release_due(self) -> None:
        if not self._delayed:
            return
        now = time.monotonic()
        due = [task for task in self._delayed if task.ready_at <= now]
        if not due:
            return
        for task in sorted(due, key=lambda t: (t.ready_at, t.seq)):
            self._pending.append(task)
        self._delayed = [task for task in self._delayed if task not in due]

    def _assign_idle(self, events: List[PoolEvent]) -> None:
        for worker in list(self._workers):
            # An idle worker that died between tasks held no work; just
            # reap it (a replacement spawns below if demand remains).
            if not worker.busy and not worker.process.is_alive():
                self._retire(worker)
        wanted = min(self._jobs, len(self._pending) + self.in_flight)
        while (
            sum(1 for w in self._workers if w.process.is_alive()) < wanted
        ):
            self._workers.append(self._spawn())
        for worker in list(self._workers):
            if not self._pending:
                break
            if worker.busy or not worker.process.is_alive():
                continue
            task = self._pending.popleft()
            self._dispatch(worker, task, events)

    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        process = multiprocessing.Process(
            target=_pool_worker_main,
            args=(child_conn, self._call),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process=process, conn=parent_conn)

    def _dispatch(
        self, worker: _PoolWorker, task: _PoolTask, events: List[PoolEvent]
    ) -> None:
        worker.index = task.index
        worker.item = task.item
        worker.attempt = task.attempt
        timeout = self._attempt_timeout(task.index)
        worker.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        try:
            _send_frame(worker.conn, (task.index, task.attempt, task.item))
        except (OSError, ValueError):
            # Died between tasks; the attempt never started but counts,
            # keeping the retry budget a hard bound.
            self._retire(worker)
            self._retry_or_fail(
                worker,
                events,
                reason="crash",
                message="pool worker died before accepting the task",
            )

    def _retire(self, worker: _PoolWorker) -> None:
        self._kill(worker)
        if worker in self._workers:
            self._workers.remove(worker)

    def _kill(self, worker: _PoolWorker) -> None:
        worker.conn.close()
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(_TERM_GRACE_SECONDS)
            if process.is_alive():  # pragma: no cover - stuck in kernel
                process.kill()
                process.join()
        else:
            process.join()

    def _collect(self, worker: _PoolWorker, events: List[PoolEvent]) -> None:
        try:
            message = _recv_frame(worker.conn)
        except _FRAME_ERRORS:
            message = None
        if message is None:
            exitcode = worker.process.exitcode
            self._retire(worker)
            self._retry_or_fail(
                worker,
                events,
                reason="crash",
                message=(
                    f"pool worker died with exitcode {exitcode} "
                    "before reporting a result"
                ),
            )
            return
        if message[0] == "ok":
            result = message[1]
            try:
                self._validate(result)
            except InvariantViolation as error:
                self._retry_or_fail(
                    worker, events, reason="invariant", message=str(error)
                )
                worker.clear()
                return
            index = worker.index
            worker.clear()
            self._timeouts.pop(index, None)
            events.append(PoolEvent(kind="done", index=index, result=result))
            return
        _tag, reason, text, _trace = message
        self._retry_or_fail(worker, events, reason=reason, message=text)
        worker.clear()

    def _retry_or_fail(
        self,
        worker: _PoolWorker,
        events: List[PoolEvent],
        *,
        reason: str,
        message: str,
    ) -> None:
        index, item, attempt = worker.index, worker.item, worker.attempt
        kind, label = self._descriptor(item)
        sink = current_sink()
        if attempt < self._policy.max_attempts:
            delay = self._policy.delay_for(index, attempt)
            if sink.wants(_TRACE_RUNNER):
                sink.emit(
                    task_retry(kind, label, attempt + 1, reason,
                               backoff_s=delay)
                )
            self._seq += 1
            retry = _PoolTask(
                index=index,
                item=item,
                attempt=attempt + 1,
                timeout=self._timeouts.get(index),
                ready_at=time.monotonic() + delay,
                seq=self._seq,
            )
            if delay > 0.0:
                self._delayed.append(retry)
            else:
                self._pending.append(retry)
            events.append(
                PoolEvent(
                    kind="retry",
                    index=index,
                    attempt=attempt + 1,
                    reason=reason,
                    backoff_s=delay,
                )
            )
            return
        if sink.wants(_TRACE_RUNNER):
            sink.emit(task_failed(kind, label, attempt, reason))
        self._timeouts.pop(index, None)
        events.append(
            PoolEvent(
                kind="failed",
                index=index,
                failure=TaskFailure(
                    index=index,
                    kind=kind,
                    label=label,
                    reason=reason,
                    message=message,
                    attempts=attempt,
                ),
                reason=reason,
            )
        )
