"""Cross-policy fairness/throughput frontier (policy-zoo experiment).

The paper's evaluation compares its mechanism against an unenforced
baseline and a time-sharing strawman. With the policy zoo
(:mod:`repro.core.policies`) every registered switch policy runs on the
*same* supervised grid, so their fairness/throughput trade-offs become
directly comparable: for each policy this experiment runs every
benchmark pair at the unenforced baseline plus the configured
enforcement level, and aggregates achieved fairness (Eq. 4 against the
measured single-thread IPCs) and throughput normalized to each pair's
own baseline.

Results are bit-identical across job counts, engine backends and
cold/resumed runs: each per-policy grid goes through
:func:`repro.experiments.runner.run_grid` unchanged, with the policy
dimension carried by :class:`~repro.experiments.common.EvalConfig` (and
therefore by cache keys and checkpoint fingerprints). When a checkpoint
path is configured, each policy journals to its own derived path
(``<checkpoint>.<policy>``), since per-policy grids have distinct
fingerprints.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.policies import get_policy, policy_names
from repro.errors import ConfigurationError
from repro.experiments.common import EvalConfig, format_table
from repro.workloads.pairs import BenchmarkPair

__all__ = ["PolicyFrontierPoint", "FrontierRow", "FrontierResult", "run", "render"]


@dataclass(frozen=True)
class PolicyFrontierPoint:
    """One (policy, pair) cell of the frontier."""

    policy: str
    level: float
    pair_label: str
    #: Eq. 4 achieved fairness at the enforcement level
    fairness: float
    #: total IPC at the enforcement level / the pair's F=0 total IPC
    normalized_throughput: float
    total_ipc: float
    forced_switches_per_kcycle: float


@dataclass(frozen=True)
class FrontierRow:
    """One policy's aggregate frontier position across all pairs."""

    policy: str
    batch_capable: bool
    level: float
    mean_fairness: float
    min_fairness: float
    mean_normalized_throughput: float
    min_normalized_throughput: float
    points: tuple[PolicyFrontierPoint, ...]


@dataclass(frozen=True)
class FrontierResult:
    """The full cross-policy frontier for one workload-mix grid."""

    level: float
    policies: tuple[str, ...]
    pair_labels: tuple[str, ...]
    rows: tuple[FrontierRow, ...]


def _frontier_config(config: EvalConfig, policy: str, level: float) -> EvalConfig:
    """The per-policy grid config: baseline + one enforcement level.

    Parameter overrides in ``config.policy_params`` belong to
    ``config.policy``'s schema, so they only carry over to that policy.
    """
    params = config.policy_params if policy == config.policy else ()
    return replace(
        config,
        policy=policy,
        policy_params=params,
        fairness_levels=(0.0, level),
    )


def run(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[BenchmarkPair]] = None,
    policies: Optional[Sequence[str]] = None,
) -> FrontierResult:
    """Sweep every registered policy over the shared evaluation grid.

    ``policies`` restricts the sweep (default: every registered policy,
    in registration order). The enforcement level is the highest
    configured fairness level.
    """
    from repro.experiments import runner

    level = max(config.fairness_levels)
    if level <= 0.0:
        raise ConfigurationError(
            "the frontier needs a non-zero fairness level to enforce at "
            f"(fairness_levels: {config.fairness_levels})"
        )
    names = tuple(policies) if policies is not None else policy_names()
    if not names:
        raise ConfigurationError("at least one policy is required")
    specs = [get_policy(name) for name in names]  # raises for unknown names

    settings = runner.current_settings()
    rows = []
    pair_labels: tuple[str, ...] = ()
    for name, spec in zip(names, specs):
        policy_settings = settings
        if settings.checkpoint is not None:
            # Per-policy grids have distinct fingerprints, so each
            # journals to (and resumes from) its own derived path.
            policy_settings = replace(
                settings,
                checkpoint=settings.checkpoint.with_name(
                    f"{settings.checkpoint.name}.{name}"
                ),
            )
        grid = runner.run_grid(
            _frontier_config(config, name, level),
            pairs=pairs,
            settings=policy_settings,
        )
        points = tuple(
            PolicyFrontierPoint(
                policy=name,
                level=level,
                pair_label=result.pair.label,
                fairness=result.achieved_fairness(level),
                normalized_throughput=result.normalized_throughput(level),
                total_ipc=result.runs[level].total_ipc,
                forced_switches_per_kcycle=(
                    result.runs[level].forced_switches_per_kcycle()
                ),
            )
            for result in grid.results
        )
        pair_labels = tuple(point.pair_label for point in points)
        rows.append(
            FrontierRow(
                policy=name,
                batch_capable=spec.batch_capable,
                level=level,
                mean_fairness=statistics.fmean(p.fairness for p in points),
                min_fairness=min(p.fairness for p in points),
                mean_normalized_throughput=statistics.fmean(
                    p.normalized_throughput for p in points
                ),
                min_normalized_throughput=min(
                    p.normalized_throughput for p in points
                ),
                points=points,
            )
        )
    return FrontierResult(
        level=level,
        policies=names,
        pair_labels=pair_labels,
        rows=tuple(rows),
    )


def render(result: FrontierResult) -> str:
    headers = [
        "policy",
        "batch",
        "mean fairness",
        "min fairness",
        "mean norm tput",
        "min norm tput",
        "forced sw/kcyc",
    ]
    rows = []
    for row in result.rows:
        forced = statistics.fmean(
            p.forced_switches_per_kcycle for p in row.points
        )
        rows.append(
            [
                row.policy,
                "yes" if row.batch_capable else "no",
                f"{row.mean_fairness:.3f}",
                f"{row.min_fairness:.3f}",
                f"{row.mean_normalized_throughput:.3f}",
                f"{row.min_normalized_throughput:.3f}",
                f"{forced:.2f}",
            ]
        )
    table = format_table(
        headers,
        rows,
        title=(
            f"Cross-policy fairness/throughput frontier "
            f"(enforcement level F={result.level:g}, "
            f"{len(result.pair_labels)} pairs)"
        ),
    )
    text = (
        table
        + "\n\nthroughput is normalized to each pair's own unenforced "
        "(F=0) baseline; fairness is Eq. 4 against measured "
        "single-thread IPCs."
    )
    if "icount" in result.policies:
        text += (
            "\nNote: icount only reorders dispatch, which with two "
            "threads almost always coincides with round robin -- its "
            "row matching 'none' is the expected finding, not a bug."
        )
    return text
