"""Parallel, cached, fault-tolerant execution layer for experiment grids.

Every headline figure consumes the same embarrassingly-parallel grid --
benchmark pairs x fairness levels x seeds -- of pure-Python simulation,
so this module supplies the mechanisms that keep a paper-scale sweep
from running serially from scratch every time, and from losing hours of
finished work to one bad task:

* :func:`parallel_map` fans independent simulation tasks out across
  supervised worker processes and collects results **in task order**,
  so a parallel run is bit-identical to a serial one (every task is a
  pure function of an explicitly-seeded spec; nothing depends on
  completion order).
* :func:`run_grid` decomposes the pair grid into single-thread baseline
  tasks and per-(pair, level) SOE tasks. Baseline runs are memoized per
  ``(benchmark, stream seed, skip, latency, run length)``, so a
  benchmark that appears in several pairs is simulated alone only once
  -- the same measured-once-reused-everywhere structure that makes
  LFOC-style fairness grids scale.
* :class:`ResultCache` persists finished :class:`PairResult`\\ s to disk,
  keyed by a content hash of ``(pair, EvalConfig, code version)``. The
  code version is a digest of the simulator sources, so editing the
  engine, the controller, or the workload generators invalidates every
  stale entry automatically. Unreadable entries are quarantined (never
  silently deleted) and recomputed.

Execution options (process count, cache directory, supervision knobs)
travel as ambient :class:`ExecutionSettings` rather than threading
through every experiment signature: the CLI installs them once via
:func:`execution` and every grid consumer picks them up.

Fault tolerance (see ``docs/ROBUSTNESS.md``): tasks run under the
:class:`~repro.experiments.supervisor.Supervisor` (per-task processes,
wall-clock timeouts, bounded retries, SIGINT/SIGTERM draining), grids
journal finished tasks to an append-only checkpoint so interrupted
sweeps resume bit-identically, and failures surface as a typed manifest
on the :class:`GridOutcome` instead of an opaque traceback.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar, Union

from repro import faults
from repro.engine.backend import BACKEND_NAMES, SoeRunSpec, get_backend
from repro.engine.singlethread import run_single_thread
from repro.engine.results import SoeRunResult
from repro.engine.soe import run_soe
from repro.errors import (
    ConfigurationError,
    GridExecutionError,
    GridInterrupted,
    SimulationError,
)
from repro.experiments.checkpoint import CheckpointWriter, load_checkpoint, task_key
from repro.experiments.common import EvalConfig, PairResult
from repro.experiments.sharding import plan_shards, resolve_shard_count
from repro.experiments.supervisor import (
    SupervisedRun,
    SupervisionPolicy,
    Supervisor,
    TaskFailure,
    check_invariants,
)
from repro.telemetry import RUNNER as _TRACE_RUNNER
from repro.telemetry import current_sink
from repro.telemetry.events import (
    cache_event,
    checkpoint_event,
    shard_event,
    task_event,
)
from repro.telemetry.profile import PROFILE, WorkerProfile, merge_latest
from repro.workloads.pairs import BenchmarkPair, evaluation_pairs
from repro.workloads.spec2000 import get_profile

__all__ = [
    "ExecutionSettings",
    "CacheStats",
    "GridOutcome",
    "ResultCache",
    "current_settings",
    "set_execution",
    "execution",
    "parallel_map",
    "single_thread_ipcs",
    "compute_pair",
    "run_grid",
    "code_version",
    "degraded_outcomes",
    "reset_degraded",
]

T = TypeVar("T")
R = TypeVar("R")

#: Bump when the on-disk cache payload layout changes.
CACHE_FORMAT = 1

#: ``*.tmp`` files in the cache directory older than this are debris
#: from a crashed writer (live writers rename within milliseconds) and
#: are swept at cache construction.
_TMP_GRACE_SECONDS = 3600.0

#: Modules whose source text determines simulation results. The cache
#: key hashes their bytes, so touching any of them drops every cached
#: grid entry (configuration and rendering modules are deliberately
#: excluded -- they cannot change a PairResult).
_CODE_VERSION_MODULES = (
    "repro.core.controller",
    "repro.core.drr",
    "repro.core.fairness",
    "repro.core.icount",
    "repro.core.lfoc",
    "repro.core.model",
    "repro.core.policies",
    "repro.core.policy",
    "repro.engine.backend",
    "repro.engine.batch",
    "repro.engine.results",
    "repro.engine.segments",
    "repro.engine.singlethread",
    "repro.engine.soe",
    "repro.workloads.materialize",
    "repro.workloads.pairs",
    "repro.workloads.profiles",
    "repro.workloads.spec2000",
    "repro.workloads.synthetic",
    "repro.workloads.tracegen",
)

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the simulator sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        digest = hashlib.sha256()
        for name in _CODE_VERSION_MODULES:
            module = importlib.import_module(name)
            digest.update(Path(module.__file__).read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


#: Legal ``on_failure`` policies: ``abort`` raises (carrying the
#: partial outcome), ``degrade`` returns whatever completed.
ON_FAILURE_MODES = ("abort", "degrade")

#: Legal ``checkpoint_sync`` policies: ``every`` fsyncs per record,
#: ``shard`` group-commits a shard's (or in-process batch's) records in
#: one write + one fsync.
CHECKPOINT_SYNC_MODES = ("every", "shard")


@dataclass(frozen=True)
class ExecutionSettings:
    """How grid work is executed (not *what* is computed).

    These knobs never influence results -- parallel, cached, supervised
    and resumed runs are bit-identical to serial uncached ones -- so
    they are kept out of :class:`EvalConfig` and out of the cache key.

    ``task_timeout``/``retries`` bound individual task attempts (see
    :class:`~repro.experiments.supervisor.SupervisionPolicy`);
    ``checkpoint`` journals finished tasks, ``resume`` prefills from an
    existing journal, and ``on_failure`` picks between aborting with
    the partial outcome attached (``abort``) and returning a degraded
    outcome (``degrade``).

    ``backend`` selects the engine substrate for SOE tasks (see
    :mod:`repro.engine.backend`): ``"scalar"`` runs each task on the
    exact event-driven engine under full supervision; ``"batch"``
    vectorizes supported SOE tasks in-process with numpy (supervision,
    timeouts and fault injection do not apply to the batched portion);
    ``"auto"`` uses the vectorized backend when numpy is installed.

    ``shards`` splits the vectorized portion across persistent pool
    workers (:mod:`repro.experiments.sharding`): an integer fixes the
    shard count, ``"auto"`` sizes it from ``jobs`` and the batch (and
    falls back to the in-process batch when sharding cannot pay for
    itself). Sharded execution is supervised -- timeouts, retries, and
    fault injection apply per shard, and a shard the pool cannot
    complete falls back to scalar supervised tasks -- and results stay
    bit-identical at every shard count. ``checkpoint_sync`` picks the
    journal durability granularity: ``"every"`` fsyncs per task record,
    ``"shard"`` group-commits each completed shard's records with a
    single fsync.
    """

    jobs: int = 1
    cache_dir: Optional[Path] = None
    task_timeout: Optional[float] = None
    retries: int = 2
    #: Base seconds of the deterministic exponential retry backoff
    #: with seeded jitter (0 = retry immediately); see
    #: :func:`repro.experiments.supervisor.backoff_delay`.
    retry_backoff: float = 0.0
    on_failure: str = "abort"
    checkpoint: Optional[Path] = None
    resume: bool = False
    backend: str = "scalar"
    shards: Union[int, str] = 1
    checkpoint_sync: str = "every"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("jobs must be a positive process count")
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}"
            )
        if isinstance(self.shards, str):
            if self.shards != "auto":
                raise ConfigurationError(
                    "shards must be 'auto' or a positive integer, "
                    f"got {self.shards!r}"
                )
        elif self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.checkpoint_sync not in CHECKPOINT_SYNC_MODES:
            raise ConfigurationError(
                f"checkpoint_sync must be one of {CHECKPOINT_SYNC_MODES}, "
                f"got {self.checkpoint_sync!r}"
            )
        if self.cache_dir is not None and not isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))
        if self.checkpoint is not None and not isinstance(self.checkpoint, Path):
            object.__setattr__(self, "checkpoint", Path(self.checkpoint))
        if self.on_failure not in ON_FAILURE_MODES:
            raise ConfigurationError(
                f"on_failure must be one of {ON_FAILURE_MODES}, "
                f"got {self.on_failure!r}"
            )
        if self.resume and self.checkpoint is None:
            raise ConfigurationError("resume requires a checkpoint path")
        # Delegates range validation of the supervision knobs.
        SupervisionPolicy(
            task_timeout=self.task_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
        )

    @property
    def policy(self) -> SupervisionPolicy:
        return SupervisionPolicy(
            task_timeout=self.task_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
        )


_AMBIENT = ExecutionSettings()


def current_settings() -> ExecutionSettings:
    """The ambient execution settings (serial, uncached by default)."""
    return _AMBIENT


def set_execution(settings: ExecutionSettings) -> ExecutionSettings:
    """Install new ambient settings; returns the previous ones."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = settings
    return previous


@contextmanager
def execution(settings: ExecutionSettings) -> Iterator[ExecutionSettings]:
    """Scope ambient execution settings to a ``with`` block."""
    previous = set_execution(settings)
    try:
        yield settings
    finally:
        set_execution(previous)


def _task_descriptor(item: object) -> tuple[str, str]:
    """(kind, label) describing a task spec in trace events."""
    if isinstance(item, _StTask):
        return "single_thread", f"{item.benchmark}@s{item.stream_seed}"
    if isinstance(item, _SoeTask):
        return "soe_pair", f"{item.pair.label}@F{item.level:g}"
    if isinstance(item, _ShardTask):
        return "shard", f"shard{item.shard}/{item.shards}"
    return "task", type(item).__name__


def _task_policy(item: object) -> Optional[str]:
    """The registered policy name enforcing a task's run, if any.

    Single-thread baselines have no policy dimension (None); an SOE run
    at level 0 is the unenforced baseline whatever the configured
    policy, so it reports ``"none"``.
    """
    if isinstance(item, _SoeTask):
        return item.config.policy if item.level > 0.0 else "none"
    return None


@dataclass(frozen=True)
class _TaskOutcome:
    """A task's result plus the executing process's profile snapshot."""

    result: object
    profile: WorkerProfile


class _TracedCall:
    """Task-function wrapper used when a trace sink is active.

    Emits runner ``task`` start/stop events (with worker pid and wall
    time) around the wrapped call and returns the result together with
    the process's cumulative profile, so the parent can merge worker
    profiling without any shared state. The wrapper is picklable
    (it holds only the module-level task function).
    """

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, item: object) -> _TaskOutcome:
        sink = current_sink()
        kind, label = _task_descriptor(item)
        policy = _task_policy(item)
        worker = os.getpid()
        if sink.wants(_TRACE_RUNNER):
            sink.emit(task_event("start", kind, label, worker, policy=policy))
        start = time.perf_counter()
        result = self.func(item)
        wall = time.perf_counter() - start
        PROFILE.record_task(wall)
        if sink.wants(_TRACE_RUNNER):
            sink.emit(
                task_event("stop", kind, label, worker, wall_s=wall, policy=policy)
            )
        return _TaskOutcome(result=result, profile=PROFILE.snapshot())


def _unwrap(payload: object) -> object:
    """The task's bare result, whether or not tracing wrapped it."""
    return payload.result if isinstance(payload, _TaskOutcome) else payload


def _validate_payload(payload: object) -> None:
    """Supervisor invariant hook: validate the result, not the wrapper."""
    check_invariants(_unwrap(payload))


def _merge_worker_profiles(outcomes: Sequence[object]) -> None:
    """Fold foreign workers' profiling totals into this process's.

    Each worker's counters are monotonic, so its *latest* snapshot (the
    field-wise maximum over what came back) is its total; snapshots
    from this process are already in :data:`PROFILE` and are skipped.
    """
    parent = os.getpid()
    latest: dict[int, WorkerProfile] = {}
    for outcome in outcomes:
        if not isinstance(outcome, _TaskOutcome):
            continue
        profile = outcome.profile
        if profile.pid == parent:
            continue
        previous = latest.get(profile.pid)
        latest[profile.pid] = (
            profile if previous is None else merge_latest(previous, profile)
        )
    for profile in latest.values():
        PROFILE.merge(profile)


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across processes.

    Results always come back in item order, so callers see identical
    output whatever ``jobs`` is. ``func`` must be a module-level
    callable (or a ``functools.partial`` of one) and every item a pure,
    picklable task spec carrying its own seed -- the workers share no
    state with the parent.

    Execution is supervised (see :mod:`repro.experiments.supervisor`):
    the ambient ``task_timeout``/``retries`` apply, crashed workers are
    respawned, and results are invariant-checked. A task that exhausts
    its retry budget raises -- the original exception when it failed
    in-process, a :class:`~repro.errors.GridExecutionError` summarizing
    the taxonomy otherwise. ``parallel_map`` is all-or-nothing; grids
    that must *persist* partial work go through :func:`run_grid`.

    When a trace sink is active, each task is bracketed by runner
    ``task`` events and worker profiles are merged back into the
    parent; the returned results are identical either way (tracing is
    observation only).
    """
    tasks = list(items)
    settings = current_settings()
    if jobs is None:
        jobs = settings.jobs
    if jobs < 1:
        raise ConfigurationError("jobs must be a positive process count")
    traced = current_sink().enabled
    call: Callable = _TracedCall(func) if traced else func
    supervisor = Supervisor(
        call,
        list(enumerate(tasks)),
        jobs=min(jobs, max(len(tasks), 1)),
        policy=settings.policy,
        descriptor=_task_descriptor,
        validate=_validate_payload,
    )
    run = supervisor.run()
    if run.failures:
        first = run.failures[0]
        if first.error is not None:
            raise first.error
        raise GridExecutionError(
            f"{len(run.failures)} of {len(tasks)} tasks failed after "
            f"supervision; first: {first.reason} in {first.kind} "
            f"{first.label} ({first.message})"
        )
    if run.skipped or run.interrupted:
        raise GridInterrupted(
            f"interrupted with {len(run.skipped)} of {len(tasks)} tasks "
            "not run"
        )
    raw = [run.results[index] for index in range(len(tasks))]
    if not traced:
        return raw
    _merge_worker_profiles(raw)
    return [_unwrap(payload) for payload in raw]


# ---------------------------------------------------------------------------
# Task decomposition: the grid is (ST baselines) + (pair x level SOE runs),
# every task a pure function of its frozen spec.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _StTask:
    """One single-thread reference run (the memoization key)."""

    benchmark: str
    stream_seed: int
    skip_instructions: float
    miss_lat: float
    min_instructions: float


@dataclass(frozen=True)
class _SoeTask:
    """One multithreaded SOE run of a pair at one fairness level."""

    pair: BenchmarkPair
    level: float
    config: EvalConfig


def _st_tasks_for(pair: BenchmarkPair, config: EvalConfig) -> tuple[_StTask, ...]:
    return tuple(
        _StTask(
            benchmark=benchmark,
            stream_seed=stream_seed,
            skip_instructions=skip,
            miss_lat=config.miss_lat,
            min_instructions=config.st_min_instructions,
        )
        for benchmark, stream_seed, skip in pair.stream_specs(config.seed)
    )


def _run_st_task(task: _StTask) -> float:
    profile = get_profile(task.benchmark)
    stream = profile.stream(
        seed=task.stream_seed, skip_instructions=task.skip_instructions
    )
    return run_single_thread(
        stream,
        miss_lat=profile.single_thread_stall(task.miss_lat),
        min_instructions=task.min_instructions,
    ).ipc


def _soe_run_spec(task: _SoeTask) -> SoeRunSpec:
    """The task's run as pure data, ready for any engine backend."""
    config = task.config
    fairness, policy = config.policy_for_level(task.level)
    return SoeRunSpec(
        streams=task.pair.streams(seed=config.seed),
        fairness=fairness,
        params=config.soe_params(),
        limits=config.run_limits(),
        policy=policy,
    )


def _run_soe_task(task: _SoeTask) -> SoeRunResult:
    spec = _soe_run_spec(task)
    return run_soe(spec.streams, spec.make_policy(), spec.params, spec.limits)


def _run_grid_task(task: Union[_StTask, _SoeTask]) -> object:
    """Dispatch for the grid's unified supervised task batch."""
    if isinstance(task, _StTask):
        return _run_st_task(task)
    return _run_soe_task(task)


@dataclass(frozen=True)
class _ShardTask:
    """One lane-contiguous shard of batch-supported SOE tasks.

    Dispatch ships the compact :class:`_SoeTask` descriptors, not the
    segment data: the pool worker re-derives each run's streams from
    the config seed and executes the whole shard on the vectorized
    backend. Besides keeping the pickles tiny, that parallelizes the
    Python-heavy stream materialization itself -- the dominant cost of
    a columnar batch -- across cores.
    """

    shard: int
    shards: int
    tasks: tuple


def _run_shard_task(task: _ShardTask) -> list:
    """Pool-worker body: one shard of runs as one vectorized batch,
    results in shard-local order."""
    specs = [_soe_run_spec(member) for member in task.tasks]
    return get_backend("batch").run_batch(specs)


def single_thread_ipcs(
    pair: BenchmarkPair,
    config: EvalConfig = EvalConfig(),
    st_memo: Optional[dict] = None,
) -> tuple[float, ...]:
    """Measured single-thread IPC per thread of ``pair``.

    ``st_memo`` (keyed by the single-thread task spec) lets callers
    reuse baseline runs across pairs -- a benchmark appearing in
    several pairs is simulated alone only once.
    """
    values = []
    for task in _st_tasks_for(pair, config):
        if st_memo is not None and task in st_memo:
            values.append(st_memo[task])
            continue
        value = _run_st_task(task)
        if st_memo is not None:
            st_memo[task] = value
        values.append(value)
    return tuple(values)


def compute_pair(
    pair: BenchmarkPair,
    config: EvalConfig = EvalConfig(),
    st_memo: Optional[dict] = None,
) -> PairResult:
    """Run one pair at every configured fairness level.

    The single source of truth for what a grid cell is: the serial
    path, the supervised executor, and the cache loader all produce
    results assembled from exactly these task functions.
    """
    ipc_st = single_thread_ipcs(pair, config, st_memo)
    runs = {
        level: _run_soe_task(_SoeTask(pair=pair, level=level, config=config))
        for level in config.fairness_levels
    }
    return PairResult(pair=pair, ipc_st=ipc_st, runs=runs)


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Cache accounting of one grid execution (zero when uncached)."""

    hits: int = 0
    misses: int = 0
    #: entries quarantined (renamed to ``*.quarantine``) as unreadable
    corrupt: int = 0
    #: stale ``*.tmp`` writer debris removed at cache construction
    swept: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


#: Exceptions :func:`pickle.loads` raises on corrupt or truncated
#: bytes. Anything *outside* this set (e.g. ``MemoryError``, ``OSError``
#: mid-read) is a real environmental problem and must propagate.
_PICKLE_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    ValueError,
    TypeError,
)


class ResultCache:
    """Content-addressed store of finished :class:`PairResult` objects.

    The key hashes the pair, every :class:`EvalConfig` field, and
    :func:`code_version`, so an entry can only ever be replayed for the
    exact computation that produced it. Entries are pickled (floats
    round-trip exactly, keeping cached results bit-identical) and
    written atomically (temp file + ``fsync`` + ``rename``) so
    concurrent runs sharing a directory never see torn files.

    An unreadable or mismatched entry reads as a miss, but is
    *quarantined* -- renamed to ``<entry>.quarantine`` and reported via
    a ``cache_event("corrupt", ...)`` -- never silently deleted, so
    corruption stays diagnosable. Construction sweeps ``*.tmp`` debris
    left by crashed writers.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        #: paths quarantined by this instance (``*.quarantine``)
        self.quarantined: list[Path] = []
        #: stale writer temp files removed by this instance
        self.swept: list[Path] = []
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp`` writer debris predating the current run.

        A live writer holds its temp file only for the instants between
        create and rename, so anything older than the grace window is
        guaranteed to be a crashed writer's leak. (Wall clock used only
        for file-age housekeeping; RL002-exempt with the rest of this
        module.)
        """
        if not self.directory.is_dir():
            return
        cutoff = time.time() - _TMP_GRACE_SECONDS
        sink = current_sink()
        for tmp in sorted(self.directory.glob("*.tmp")):
            try:
                if tmp.stat().st_mtime >= cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue  # raced with another sweeper, or vanished
            self.swept.append(tmp)
            if sink.wants(_TRACE_RUNNER):
                sink.emit(cache_event("sweep", tmp.name))

    def key(self, pair: BenchmarkPair, config: EvalConfig) -> str:
        fingerprint = (
            "pair-grid",
            CACHE_FORMAT,
            code_version(),
            pair.first,
            pair.second,
            tuple(
                (field.name, repr(getattr(config, field.name)))
                for field in fields(config)
            ),
        )
        return hashlib.sha256(repr(fingerprint).encode()).hexdigest()[:32]

    def path(self, pair: BenchmarkPair, config: EvalConfig) -> Path:
        return self.directory / f"pair-{self.key(pair, config)}.pkl"

    def _quarantine(self, path: Path, label: str) -> None:
        quarantine = path.with_name(path.name + ".quarantine")
        try:
            os.replace(path, quarantine)
        except OSError:
            return  # a concurrent run already quarantined it
        self.quarantined.append(quarantine)
        sink = current_sink()
        if sink.wants(_TRACE_RUNNER):
            sink.emit(cache_event("corrupt", label))

    def load(self, pair: BenchmarkPair, config: EvalConfig) -> Optional[PairResult]:
        path = self.path(pair, config)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            payload = pickle.loads(data)
        except _PICKLE_CORRUPTION_ERRORS:
            self._quarantine(path, pair.label)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CACHE_FORMAT
            or not isinstance(payload.get("result"), PairResult)
        ):
            # Valid pickle, wrong shape: the key already encodes
            # CACHE_FORMAT and code version, so a mismatched payload at
            # the right key is foreign/corrupt, not merely stale.
            self._quarantine(path, pair.label)
            return None
        return payload["result"]

    def store(
        self, pair: BenchmarkPair, config: EvalConfig, result: PairResult
    ) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "result": result}
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path(pair, config))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# The grid runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridOutcome:
    """Results of one grid execution plus its robustness accounting.

    A fully successful run has ``ok == True`` and empty failure fields;
    a degraded or interrupted run still carries every completed
    :class:`PairResult` (in the caller's pair order, incomplete pairs
    elided) plus a machine-readable :meth:`failure_manifest`.
    """

    results: list[PairResult]
    stats: CacheStats
    #: tasks that exhausted their retry budget
    failures: tuple[TaskFailure, ...] = ()
    #: labels of pairs elided from ``results`` (a task failed/skipped)
    incomplete_pairs: tuple[str, ...] = ()
    #: a drain (SIGINT/SIGTERM) cut the run short
    interrupted: bool = False
    #: tasks prefilled from the resume checkpoint
    resumed_tasks: int = 0
    #: retry attempts consumed across all tasks
    retries: int = 0
    #: tasks never launched because of a drain
    skipped_tasks: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and not self.incomplete_pairs
            and not self.interrupted
        )

    def failure_manifest(self) -> dict:
        """JSON-ready account of what did not complete and why."""
        return {
            "version": 1,
            "ok": self.ok,
            "interrupted": self.interrupted,
            "completed_pairs": len(self.results),
            "incomplete_pairs": list(self.incomplete_pairs),
            "failures": [failure.to_json() for failure in self.failures],
            "resumed_tasks": self.resumed_tasks,
            "retries": self.retries,
            "skipped_tasks": self.skipped_tasks,
        }


#: Degraded/interrupted outcomes observed since the last reset; lets
#: the CLI map "the run finished but not everything completed" onto a
#: distinct exit code without threading outcomes through every
#: experiment's return type.
_DEGRADED: list[GridOutcome] = []


def degraded_outcomes() -> list[GridOutcome]:
    """Grid outcomes since :func:`reset_degraded` with ``ok == False``."""
    return list(_DEGRADED)


def reset_degraded() -> None:
    """Clear the degraded-outcome record (start of a CLI invocation)."""
    _DEGRADED.clear()


def _grid_fingerprint(
    config: EvalConfig, pair_list: Sequence[BenchmarkPair]
) -> str:
    """Pins a checkpoint to one exact grid computation."""
    fingerprint = (
        "grid-checkpoint",
        code_version(),
        tuple(
            (field.name, repr(getattr(config, field.name)))
            for field in fields(config)
        ),
        tuple(repr(pair) for pair in pair_list),
    )
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()[:32]


def _journal_records(
    writer: Optional[CheckpointWriter],
    sink: object,
    settings: ExecutionSettings,
    records: list,
) -> None:
    """Write task records honoring the ``checkpoint_sync`` policy."""
    if writer is None or not records:
        return
    if settings.checkpoint_sync == "shard":
        writer.record_many(records)
        if sink.wants(_TRACE_RUNNER):
            sink.emit(
                checkpoint_event(
                    "write", len(records), str(settings.checkpoint)
                )
            )
        return
    for kind, key, value in records:
        writer.record(kind, key, value)
        if sink.wants(_TRACE_RUNNER):
            sink.emit(checkpoint_event("write", 1, str(settings.checkpoint)))


def run_grid(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[BenchmarkPair]] = None,
    settings: Optional[ExecutionSettings] = None,
) -> GridOutcome:
    """Execute the pair/fairness grid under the given settings.

    The decomposition is deterministic: unique single-thread tasks in
    first-appearance order, then every (pair, level) SOE task in pair
    order, then assembly back into :class:`PairResult` objects in the
    caller's pair order. Because each task is a pure function of its
    spec, the result is independent of ``jobs``, of cache state, of
    supervision (timeouts, retries, worker crashes), and of
    checkpoint/resume.

    Failure semantics: tasks that exhaust their retry budget (and the
    pairs depending on them) are recorded in the outcome's failure
    manifest. Under ``on_failure="abort"`` the run raises
    :class:`~repro.errors.GridExecutionError` (or
    :class:`~repro.errors.GridInterrupted` after a drain) *carrying*
    the partial outcome; under ``"degrade"`` the partial outcome is
    returned. Either way completed work is cached and journaled first.
    """
    if settings is None:
        settings = current_settings()
    pair_list = list(pairs) if pairs is not None else evaluation_pairs()
    cache = (
        ResultCache(settings.cache_dir) if settings.cache_dir is not None else None
    )
    stats = CacheStats()
    sink = current_sink()
    results: dict[int, PairResult] = {}
    pending: list[tuple[int, BenchmarkPair]] = []
    for index, pair in enumerate(pair_list):
        cached = cache.load(pair, config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            stats.hits += 1
            if sink.wants(_TRACE_RUNNER):
                sink.emit(cache_event("hit", pair.label))
        else:
            if cache is not None:
                stats.misses += 1
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(cache_event("miss", pair.label))
            pending.append((index, pair))

    failures: tuple[TaskFailure, ...] = ()
    incomplete: list[str] = []
    interrupted = False
    resumed = 0
    retries = 0
    skipped_tasks = 0
    if pending:
        # Deterministic unified task batch: unique ST baselines in
        # first-appearance order, then (pair, level) SOE tasks in pair
        # order. Global indices are the stable coordinates checkpoint
        # records and fault injection address.
        st_tasks: dict[_StTask, None] = {}
        for _, pair in pending:
            for task in _st_tasks_for(pair, config):
                st_tasks.setdefault(task)
        st_order = list(st_tasks)
        st_index = {task: position for position, task in enumerate(st_order)}
        levels = config.fairness_levels
        specs: list[Union[_StTask, _SoeTask]] = list(st_order)
        for _, pair in pending:
            for level in levels:
                specs.append(_SoeTask(pair=pair, level=level, config=config))

        version = code_version()
        keys = [task_key(spec, version) for spec in specs]
        task_values: dict[int, object] = {}
        writer: Optional[CheckpointWriter] = None
        try:
            if settings.checkpoint is not None:
                fingerprint = _grid_fingerprint(config, pair_list)
                journal = settings.checkpoint
                if (
                    settings.resume
                    and journal.exists()
                    and journal.stat().st_size > 0
                ):
                    state = load_checkpoint(journal)
                    if state.fingerprint != fingerprint:
                        raise ConfigurationError(
                            f"checkpoint {journal} was written for a "
                            "different grid (config, pair list, or "
                            "simulator code changed); refusing to resume "
                            "from it"
                        )
                    for position, key in enumerate(keys):
                        if key in state.tasks:
                            task_values[position] = state.tasks[key]
                    resumed = len(task_values)
                    if sink.wants(_TRACE_RUNNER):
                        sink.emit(
                            checkpoint_event("resume", resumed, str(journal))
                        )
                writer = CheckpointWriter(journal, fingerprint, version)

            to_run = [
                (position, spec)
                for position, spec in enumerate(specs)
                if position not in task_values
            ]

            # Vectorized pre-pass: with a non-scalar backend, supported
            # SOE tasks run as array-advanced batches -- in-process as
            # one batch, or (``shards``) partitioned across persistent
            # supervised pool workers and merged in global-index order;
            # the batch-no-coupling property keeps both bit-identical
            # to each other and to the scalar reference. The remainder
            # (ST baselines, SOE tasks outside the backend's envelope,
            # and any shard the pool could not complete) goes through
            # the supervised executor unchanged. Batched results are
            # validated and journaled exactly like supervised ones;
            # per-task supervision (timeouts, retries, fault injection)
            # applies per *shard* when sharded and not at all to the
            # in-process batch.
            backend = get_backend(settings.backend)
            shard_interrupted = False
            shard_retries = 0
            if backend.name != "scalar" and to_run:
                batched: list[int] = []
                batch_specs: list[SoeRunSpec] = []
                batch_tasks: list[_SoeTask] = []
                for position, spec in to_run:
                    if isinstance(spec, _SoeTask):
                        run_spec = _soe_run_spec(spec)
                        if backend.supports(run_spec):
                            batched.append(position)
                            batch_specs.append(run_spec)
                            batch_tasks.append(spec)
                shards = (
                    resolve_shard_count(
                        settings.shards,
                        jobs=settings.jobs,
                        total=len(batch_specs),
                    )
                    if batch_specs
                    else 1
                )
                if batch_specs and shards <= 1:
                    records: list = []
                    for position, value in zip(
                        batched, backend.run_batch(batch_specs)
                    ):
                        check_invariants(value)
                        task_values[position] = value
                        records.append(("soe", keys[position], value))
                    _journal_records(writer, sink, settings, records)
                elif batch_specs:
                    plan = plan_shards(len(batch_specs), shards)
                    if writer is not None:
                        writer.note(
                            {
                                "shard_plan": plan.digest(),
                                "shards": plan.num_shards,
                                "runs": plan.total,
                            }
                        )
                    shard_tasks = [
                        (
                            shard,
                            _ShardTask(
                                shard=shard,
                                shards=plan.num_shards,
                                tasks=tuple(
                                    batch_tasks[offset]
                                    for offset in plan.positions(shard)
                                ),
                            ),
                        )
                        for shard in range(plan.num_shards)
                    ]

                    def _on_shard(
                        shard: int, item: object, payload: object
                    ) -> None:
                        values = list(payload)
                        positions = plan.positions(shard)
                        if len(values) != len(positions):
                            raise SimulationError(
                                f"shard {shard} returned {len(values)} "
                                f"results for {len(positions)} runs"
                            )
                        records = []
                        for offset, value in zip(positions, values):
                            position = batched[offset]
                            task_values[position] = value
                            records.append(("soe", keys[position], value))
                        _journal_records(writer, sink, settings, records)
                        if sink.wants(_TRACE_RUNNER):
                            sink.emit(
                                shard_event(
                                    "stop",
                                    shard,
                                    plan.num_shards,
                                    len(values),
                                    "batch",
                                )
                            )

                    if sink.wants(_TRACE_RUNNER):
                        for shard, task in shard_tasks:
                            sink.emit(
                                shard_event(
                                    "start",
                                    shard,
                                    plan.num_shards,
                                    len(task.tasks),
                                    "batch",
                                )
                            )
                    shard_run = Supervisor(
                        _run_shard_task,
                        shard_tasks,
                        jobs=min(settings.jobs, plan.num_shards),
                        policy=settings.policy,
                        descriptor=_task_descriptor,
                        validate=check_invariants,
                        on_result=_on_shard,
                        pool=True,
                    ).run()
                    # A failed shard leaves its positions unfilled;
                    # they flow to the scalar supervised remainder
                    # below, which owns the authoritative per-task
                    # failure manifest.
                    shard_interrupted = shard_run.interrupted
                    shard_retries = shard_run.retries
                to_run = [
                    (position, spec)
                    for position, spec in to_run
                    if position not in task_values
                ]

            traced = sink.enabled
            call: Callable = (
                _TracedCall(_run_grid_task) if traced else _run_grid_task
            )
            payloads: list[object] = []

            def _on_result(position: int, item: object, payload: object) -> None:
                value = _unwrap(payload)
                payloads.append(payload)
                task_values[position] = value
                _journal_records(
                    writer,
                    sink,
                    settings,
                    [
                        (
                            "st" if isinstance(item, _StTask) else "soe",
                            keys[position],
                            value,
                        )
                    ],
                )

            if shard_interrupted:
                # The shard phase drained on a signal: honor it -- do
                # not start a second supervised phase for the rest.
                run = SupervisedRun(
                    results={},
                    failures=[],
                    skipped=[position for position, _ in to_run],
                    interrupted=True,
                )
            else:
                supervisor = Supervisor(
                    call,
                    to_run,
                    jobs=min(settings.jobs, max(len(to_run), 1)),
                    policy=settings.policy,
                    descriptor=_task_descriptor,
                    validate=_validate_payload,
                    on_result=_on_result,
                )
                run = supervisor.run()
            run.retries += shard_retries
        finally:
            if writer is not None:
                writer.close()
        if traced:
            _merge_worker_profiles(payloads)
        failures = tuple(run.failures)
        interrupted = run.interrupted
        retries = run.retries
        skipped_tasks = len(run.skipped)

        # Assemble completed pairs; a pair missing any task is elided
        # (recorded as incomplete) rather than built from partial data.
        plan = faults.current_plan()
        soe_base = len(st_order)
        for slot, (index, pair) in enumerate(pending):
            st_positions = [
                st_index[task] for task in _st_tasks_for(pair, config)
            ]
            soe_positions = [
                soe_base + slot * len(levels) + offset
                for offset in range(len(levels))
            ]
            if not all(
                position in task_values
                for position in st_positions + soe_positions
            ):
                incomplete.append(pair.label)
                continue
            result = PairResult(
                pair=pair,
                ipc_st=tuple(
                    task_values[position] for position in st_positions
                ),
                runs={
                    level: task_values[soe_positions[offset]]
                    for offset, level in enumerate(levels)
                },
            )
            results[index] = result
            if cache is not None:
                cache.store(pair, config, result)
                if plan.corrupts_cache(index):
                    plan.corrupt_file(cache.path(pair, config))

    if cache is not None:
        stats.corrupt = len(cache.quarantined)
        stats.swept = len(cache.swept)
    ordered = [
        results[index] for index in range(len(pair_list)) if index in results
    ]
    outcome = GridOutcome(
        results=ordered,
        stats=stats,
        failures=failures,
        incomplete_pairs=tuple(incomplete),
        interrupted=interrupted,
        resumed_tasks=resumed,
        retries=retries,
        skipped_tasks=skipped_tasks,
    )
    if not outcome.ok:
        _DEGRADED.append(outcome)
        if settings.on_failure == "abort":
            summary = (
                f"grid ended with {len(outcome.failures)} failed task(s); "
                f"{len(outcome.incomplete_pairs)} of {len(pair_list)} "
                "pair(s) incomplete"
            )
            if outcome.interrupted:
                raise GridInterrupted(
                    f"grid interrupted; {summary}", outcome
                )
            raise GridExecutionError(summary, outcome)
    return outcome
