"""Parallel, cached execution layer for the experiment grids.

Every headline figure consumes the same embarrassingly-parallel grid --
benchmark pairs x fairness levels x seeds -- of pure-Python simulation,
so this module supplies the three mechanisms that keep a paper-scale
sweep from running serially from scratch every time:

* :func:`parallel_map` fans independent simulation tasks out across a
  ``multiprocessing`` pool and collects results **in task order**, so a
  parallel run is bit-identical to a serial one (every task is a pure
  function of an explicitly-seeded spec; nothing depends on completion
  order).
* :func:`run_grid` decomposes the pair grid into single-thread baseline
  tasks and per-(pair, level) SOE tasks. Baseline runs are memoized per
  ``(benchmark, stream seed, skip, latency, run length)``, so a
  benchmark that appears in several pairs is simulated alone only once
  -- the same measured-once-reused-everywhere structure that makes
  LFOC-style fairness grids scale.
* :class:`ResultCache` persists finished :class:`PairResult`\\ s to disk,
  keyed by a content hash of ``(pair, EvalConfig, code version)``. The
  code version is a digest of the simulator sources, so editing the
  engine, the controller, or the workload generators invalidates every
  stale entry automatically.

Execution options (process count, cache directory) travel as ambient
:class:`ExecutionSettings` rather than threading through every
experiment signature: the CLI installs them once via :func:`execution`
and every grid consumer picks them up.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, TypeVar, Union

from repro.core.controller import FairnessController
from repro.engine.singlethread import run_single_thread
from repro.engine.results import SoeRunResult
from repro.engine.soe import run_soe
from repro.errors import ConfigurationError
from repro.experiments.common import EvalConfig, PairResult
from repro.telemetry import RUNNER as _TRACE_RUNNER
from repro.telemetry import current_sink
from repro.telemetry.events import cache_event, task_event
from repro.telemetry.profile import PROFILE, WorkerProfile, merge_latest
from repro.workloads.pairs import BenchmarkPair, evaluation_pairs
from repro.workloads.spec2000 import get_profile

__all__ = [
    "ExecutionSettings",
    "CacheStats",
    "GridOutcome",
    "ResultCache",
    "current_settings",
    "set_execution",
    "execution",
    "parallel_map",
    "single_thread_ipcs",
    "compute_pair",
    "run_grid",
    "code_version",
]

T = TypeVar("T")
R = TypeVar("R")

#: Bump when the on-disk cache payload layout changes.
CACHE_FORMAT = 1

#: Modules whose source text determines simulation results. The cache
#: key hashes their bytes, so touching any of them drops every cached
#: grid entry (configuration and rendering modules are deliberately
#: excluded -- they cannot change a PairResult).
_CODE_VERSION_MODULES = (
    "repro.core.controller",
    "repro.core.fairness",
    "repro.core.model",
    "repro.core.policy",
    "repro.engine.results",
    "repro.engine.segments",
    "repro.engine.singlethread",
    "repro.engine.soe",
    "repro.workloads.pairs",
    "repro.workloads.profiles",
    "repro.workloads.spec2000",
    "repro.workloads.synthetic",
    "repro.workloads.tracegen",
)

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the simulator sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        digest = hashlib.sha256()
        for name in _CODE_VERSION_MODULES:
            module = importlib.import_module(name)
            digest.update(Path(module.__file__).read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


@dataclass(frozen=True)
class ExecutionSettings:
    """How grid work is executed (not *what* is computed).

    These knobs never influence results -- parallel and cached runs are
    bit-identical to serial uncached ones -- so they are kept out of
    :class:`EvalConfig` and out of the cache key.
    """

    jobs: int = 1
    cache_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("jobs must be a positive process count")
        if self.cache_dir is not None and not isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))


_AMBIENT = ExecutionSettings()


def current_settings() -> ExecutionSettings:
    """The ambient execution settings (serial, uncached by default)."""
    return _AMBIENT


def set_execution(settings: ExecutionSettings) -> ExecutionSettings:
    """Install new ambient settings; returns the previous ones."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = settings
    return previous


@contextmanager
def execution(settings: ExecutionSettings) -> Iterator[ExecutionSettings]:
    """Scope ambient execution settings to a ``with`` block."""
    previous = set_execution(settings)
    try:
        yield settings
    finally:
        set_execution(previous)


def _task_descriptor(item: object) -> tuple[str, str]:
    """(kind, label) describing a task spec in trace events."""
    if isinstance(item, _StTask):
        return "single_thread", f"{item.benchmark}@s{item.stream_seed}"
    if isinstance(item, _SoeTask):
        return "soe_pair", f"{item.pair.label}@F{item.level:g}"
    return "task", type(item).__name__


@dataclass(frozen=True)
class _TaskOutcome:
    """A task's result plus the executing process's profile snapshot."""

    result: object
    profile: WorkerProfile


class _TracedCall:
    """Task-function wrapper used when a trace sink is active.

    Emits runner ``task`` start/stop events (with worker pid and wall
    time) around the wrapped call and returns the result together with
    the process's cumulative profile, so the parent can merge worker
    profiling without any shared state. The wrapper is picklable
    (it holds only the module-level task function).
    """

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, item: object) -> _TaskOutcome:
        sink = current_sink()
        kind, label = _task_descriptor(item)
        worker = os.getpid()
        if sink.wants(_TRACE_RUNNER):
            sink.emit(task_event("start", kind, label, worker))
        start = time.perf_counter()
        result = self.func(item)
        wall = time.perf_counter() - start
        PROFILE.record_task(wall)
        if sink.wants(_TRACE_RUNNER):
            sink.emit(task_event("stop", kind, label, worker, wall_s=wall))
        return _TaskOutcome(result=result, profile=PROFILE.snapshot())


def _merge_worker_profiles(outcomes: Sequence[_TaskOutcome]) -> None:
    """Fold foreign workers' profiling totals into this process's.

    Each worker's counters are monotonic, so its *latest* snapshot (the
    field-wise maximum over what came back) is its total; snapshots
    from this process are already in :data:`PROFILE` and are skipped.
    """
    parent = os.getpid()
    latest: dict[int, WorkerProfile] = {}
    for outcome in outcomes:
        profile = outcome.profile
        if profile.pid == parent:
            continue
        previous = latest.get(profile.pid)
        latest[profile.pid] = (
            profile if previous is None else merge_latest(previous, profile)
        )
    for profile in latest.values():
        PROFILE.merge(profile)


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across processes.

    Results always come back in item order, so callers see identical
    output whatever ``jobs`` is. ``func`` must be a module-level
    callable (or a ``functools.partial`` of one) and every item a pure,
    picklable task spec carrying its own seed -- the workers share no
    state with the parent.

    When a trace sink is active, each task is bracketed by runner
    ``task`` events and worker profiles are merged back into the
    parent; the returned results are identical either way (tracing is
    observation only).
    """
    tasks = list(items)
    if jobs is None:
        jobs = current_settings().jobs
    if jobs < 1:
        raise ConfigurationError("jobs must be a positive process count")
    traced = current_sink().enabled
    call: Callable = _TracedCall(func) if traced else func
    if jobs == 1 or len(tasks) <= 1:
        raw = [call(task) for task in tasks]
    else:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            raw = pool.map(call, tasks, chunksize=1)
    if not traced:
        return raw
    _merge_worker_profiles(raw)
    return [outcome.result for outcome in raw]


# ---------------------------------------------------------------------------
# Task decomposition: the grid is (ST baselines) + (pair x level SOE runs),
# every task a pure function of its frozen spec.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _StTask:
    """One single-thread reference run (the memoization key)."""

    benchmark: str
    stream_seed: int
    skip_instructions: float
    miss_lat: float
    min_instructions: float


@dataclass(frozen=True)
class _SoeTask:
    """One multithreaded SOE run of a pair at one fairness level."""

    pair: BenchmarkPair
    level: float
    config: EvalConfig


def _st_tasks_for(pair: BenchmarkPair, config: EvalConfig) -> tuple[_StTask, ...]:
    return tuple(
        _StTask(
            benchmark=benchmark,
            stream_seed=stream_seed,
            skip_instructions=skip,
            miss_lat=config.miss_lat,
            min_instructions=config.st_min_instructions,
        )
        for benchmark, stream_seed, skip in pair.stream_specs(config.seed)
    )


def _run_st_task(task: _StTask) -> float:
    profile = get_profile(task.benchmark)
    stream = profile.stream(
        seed=task.stream_seed, skip_instructions=task.skip_instructions
    )
    return run_single_thread(
        stream,
        miss_lat=profile.single_thread_stall(task.miss_lat),
        min_instructions=task.min_instructions,
    ).ipc


def _run_soe_task(task: _SoeTask) -> SoeRunResult:
    config = task.config
    streams = task.pair.streams(seed=config.seed)
    if task.level > 0.0:
        policy = FairnessController(
            len(streams), config.fairness_params(task.level)
        )
    else:
        policy = None
    return run_soe(streams, policy, config.soe_params(), config.run_limits())


def single_thread_ipcs(
    pair: BenchmarkPair,
    config: EvalConfig = EvalConfig(),
    st_memo: Optional[dict] = None,
) -> tuple[float, ...]:
    """Measured single-thread IPC per thread of ``pair``.

    ``st_memo`` (keyed by the single-thread task spec) lets callers
    reuse baseline runs across pairs -- a benchmark appearing in
    several pairs is simulated alone only once.
    """
    values = []
    for task in _st_tasks_for(pair, config):
        if st_memo is not None and task in st_memo:
            values.append(st_memo[task])
            continue
        value = _run_st_task(task)
        if st_memo is not None:
            st_memo[task] = value
        values.append(value)
    return tuple(values)


def compute_pair(
    pair: BenchmarkPair,
    config: EvalConfig = EvalConfig(),
    st_memo: Optional[dict] = None,
) -> PairResult:
    """Run one pair at every configured fairness level.

    The single source of truth for what a grid cell is: the serial
    path, the process pool, and the cache loader all produce results
    assembled from exactly these task functions.
    """
    ipc_st = single_thread_ipcs(pair, config, st_memo)
    runs = {
        level: _run_soe_task(_SoeTask(pair=pair, level=level, config=config))
        for level in config.fairness_levels
    }
    return PairResult(pair=pair, ipc_st=ipc_st, runs=runs)


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counts of one grid execution (zero when uncached)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of finished :class:`PairResult` objects.

    The key hashes the pair, every :class:`EvalConfig` field, and
    :func:`code_version`, so an entry can only ever be replayed for the
    exact computation that produced it. Entries are pickled (floats
    round-trip exactly, keeping cached results bit-identical) and
    written atomically so concurrent runs sharing a directory never see
    torn files; any unreadable or mismatched entry is treated as a
    miss.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def key(self, pair: BenchmarkPair, config: EvalConfig) -> str:
        fingerprint = (
            "pair-grid",
            CACHE_FORMAT,
            code_version(),
            pair.first,
            pair.second,
            tuple(
                (field.name, repr(getattr(config, field.name)))
                for field in fields(config)
            ),
        )
        return hashlib.sha256(repr(fingerprint).encode()).hexdigest()[:32]

    def path(self, pair: BenchmarkPair, config: EvalConfig) -> Path:
        return self.directory / f"pair-{self.key(pair, config)}.pkl"

    def load(self, pair: BenchmarkPair, config: EvalConfig) -> Optional[PairResult]:
        # A cache read must never sink a run: pickle.load raises nearly
        # arbitrary exceptions on corrupt bytes (ValueError, KeyError,
        # UnpicklingError...), and every one of them just means "miss".
        try:
            with self.path(pair, config).open("rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CACHE_FORMAT
            or not isinstance(payload.get("result"), PairResult)
        ):
            return None
        return payload["result"]

    def store(
        self, pair: BenchmarkPair, config: EvalConfig, result: PairResult
    ) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "result": result}
        handle = tempfile.NamedTemporaryFile(
            dir=self.directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(payload, handle)
            os.replace(handle.name, self.path(pair, config))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# The grid runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridOutcome:
    """Results of one grid execution plus its cache accounting."""

    results: list[PairResult]
    stats: CacheStats


def run_grid(
    config: EvalConfig = EvalConfig(),
    pairs: Optional[Sequence[BenchmarkPair]] = None,
    settings: Optional[ExecutionSettings] = None,
) -> GridOutcome:
    """Execute the pair/fairness grid under the given settings.

    The decomposition is deterministic: unique single-thread tasks in
    first-appearance order, then every (pair, level) SOE task in pair
    order, then assembly back into :class:`PairResult` objects in the
    caller's pair order. Because each task is a pure function of its
    spec, the result is independent of ``jobs`` and of cache state.
    """
    if settings is None:
        settings = current_settings()
    pair_list = list(pairs) if pairs is not None else evaluation_pairs()
    cache = (
        ResultCache(settings.cache_dir) if settings.cache_dir is not None else None
    )
    stats = CacheStats()
    sink = current_sink()
    results: dict[int, PairResult] = {}
    pending: list[tuple[int, BenchmarkPair]] = []
    for index, pair in enumerate(pair_list):
        cached = cache.load(pair, config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            stats.hits += 1
            if sink.wants(_TRACE_RUNNER):
                sink.emit(cache_event("hit", pair.label))
        else:
            if cache is not None:
                stats.misses += 1
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(cache_event("miss", pair.label))
            pending.append((index, pair))

    if pending:
        st_tasks: dict[_StTask, None] = {}
        for _, pair in pending:
            for task in _st_tasks_for(pair, config):
                st_tasks.setdefault(task)
        st_order = list(st_tasks)
        st_values = parallel_map(_run_st_task, st_order, jobs=settings.jobs)
        st_memo = dict(zip(st_order, st_values))

        soe_tasks = [
            _SoeTask(pair=pair, level=level, config=config)
            for _, pair in pending
            for level in config.fairness_levels
        ]
        soe_values = parallel_map(_run_soe_task, soe_tasks, jobs=settings.jobs)
        soe_iter = iter(soe_values)
        for index, pair in pending:
            runs = {level: next(soe_iter) for level in config.fairness_levels}
            result = PairResult(
                pair=pair,
                ipc_st=tuple(
                    st_memo[task] for task in _st_tasks_for(pair, config)
                ),
                runs=runs,
            )
            results[index] = result
            if cache is not None:
                cache.store(pair, config, result)

    ordered = [results[index] for index in range(len(pair_list))]
    return GridOutcome(results=ordered, stats=stats)
