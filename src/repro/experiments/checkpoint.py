"""Append-only checkpoint journal for grid executions.

A multi-hour sweep must survive crashes, hangs, and Ctrl-C without
losing finished simulation. The journal records every completed grid
*task* (single-thread baseline or one (pair, level) SOE run) as one
self-contained JSONL line, so a later ``--resume`` run can skip exactly
the work that already happened and produce a :class:`GridOutcome`
bit-identical to an uninterrupted run.

Format (schema-versioned, documented in ``docs/ROBUSTNESS.md``)::

    {"v": 1, "kind": "header", "fingerprint": "...", "code_version": "..."}
    {"v": 1, "kind": "task", "task": "st",  "key": "...", "data": "<b64>"}
    {"v": 1, "kind": "task", "task": "soe", "key": "...", "data": "<b64>"}
    {"v": 1, "kind": "note", "note": {...}}

* ``fingerprint`` pins the exact computation (config fields, pair list,
  simulator code version); resuming under a different fingerprint is a
  :class:`~repro.errors.ConfigurationError`, never silent reuse.
* ``key`` content-addresses one task spec (same idea as the result
  cache); ``data`` is the base64 pickle of the task's result, so floats
  round-trip exactly and resumed grids stay bit-identical.
* ``note`` lines are informational annotations (e.g. the shard-plan
  digest a sharded run executed under); the loader collects them but
  they never gate resume -- a journal written at one shard count must
  resume at any other.
* Writes are crash-safe by construction: each record is a single
  ``O_APPEND`` ``os.write`` followed by ``fsync``; a group commit
  (:meth:`CheckpointWriter.record_many`, ``--checkpoint-sync shard``)
  joins many complete lines into that one write. Either way a torn
  line can only ever be the last one -- and the loader tolerates
  exactly that.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "CHECKPOINT_VERSION",
    "task_key",
    "CheckpointState",
    "CheckpointWriter",
    "load_checkpoint",
]

#: Bump when the journal's line layout changes.
CHECKPOINT_VERSION = 1


def task_key(task: object, code_version: str) -> str:
    """Content address of one task spec under one simulator version.

    Task specs are frozen dataclasses of primitives whose ``repr`` is
    deterministic; hashing it alongside the code version means a
    checkpoint can never replay results for changed code or config.
    """
    payload = repr((CHECKPOINT_VERSION, code_version, task))
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@dataclass
class CheckpointState:
    """Everything a journal holds: its header and the completed tasks."""

    header: dict
    #: task key -> unpickled task result
    tasks: dict = field(default_factory=dict)
    #: informational "note" line payloads, in journal order
    notes: list = field(default_factory=list)

    @property
    def fingerprint(self) -> str:
        return str(self.header.get("fingerprint", ""))


def _decode_line(obj: object, path: Path, line_no: int) -> dict:
    if not isinstance(obj, dict):
        raise ConfigurationError(
            f"{path}:{line_no}: checkpoint line must be an object"
        )
    if obj.get("v") != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"{path}:{line_no}: checkpoint version {obj.get('v')!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return obj


def load_checkpoint(path: Union[str, Path]) -> CheckpointState:
    """Read a journal back; tolerates a torn (partial) final line.

    Raises :class:`~repro.errors.ConfigurationError` for anything a
    crash cannot explain: a missing or malformed header, or corruption
    before the final line.
    """
    journal = Path(path)
    if not journal.exists():
        raise ConfigurationError(f"checkpoint file not found: {journal}")
    raw_lines = journal.read_bytes().split(b"\n")
    state: Optional[CheckpointState] = None
    for line_no, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            continue
        # A line can only be torn if the crash happened mid-append: it
        # is the file's final bytes and has no trailing newline.
        torn_ok = line_no == len(raw_lines)
        try:
            obj = _decode_line(json.loads(raw.decode("utf-8")), journal, line_no)
            kind = obj.get("kind")
            if state is None:
                if kind != "header":
                    raise ConfigurationError(
                        f"{journal}:{line_no}: first checkpoint line must "
                        "be the header"
                    )
                state = CheckpointState(header=obj)
                continue
            if kind == "note":
                state.notes.append(obj.get("note", {}))
                continue
            if kind != "task":
                raise ConfigurationError(
                    f"{journal}:{line_no}: unknown checkpoint line kind "
                    f"{kind!r}"
                )
            key = obj["key"]
            data = base64.b64decode(obj["data"], validate=True)
            state.tasks[key] = pickle.loads(data)
        except ConfigurationError:
            raise
        except Exception as error:
            # A crash mid-append can only tear the final line; anything
            # earlier is real corruption and must not be silently
            # dropped (the run would quietly recompute — or worse,
            # skip — the wrong tasks).
            if torn_ok:
                break
            raise ConfigurationError(
                f"{journal}:{line_no}: corrupt checkpoint line ({error})"
            ) from error
    if state is None:
        raise ConfigurationError(f"{journal}: empty checkpoint (no header)")
    return state


class CheckpointWriter:
    """Appends task records to a journal, one fsync'd line at a time.

    Opening an existing journal validates its header against the
    current run's ``fingerprint`` (append-after-resume must target the
    same computation); a fresh file gets the header written first.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str,
                 code_version: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.path.parent.mkdir(parents=True, exist_ok=True)
        preexisting = self.path.exists() and self.path.stat().st_size > 0
        if preexisting:
            state = load_checkpoint(self.path)
            if state.fingerprint != fingerprint:
                raise ConfigurationError(
                    f"checkpoint {self.path} was written for a different "
                    "grid (config, pair list, or simulator code changed); "
                    "refusing to mix results — delete it or pass a fresh "
                    "path"
                )
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if not preexisting:
            self._write_line(
                {
                    "v": CHECKPOINT_VERSION,
                    "kind": "header",
                    "fingerprint": fingerprint,
                    "code_version": code_version,
                }
            )

    def _write_lines(self, objs: list) -> None:
        if self._fd is None:
            raise ConfigurationError("checkpoint writer is closed")
        payload = b"".join(
            json.dumps(obj, separators=(",", ":"), sort_keys=True).encode(
                "utf-8"
            )
            + b"\n"
            for obj in objs
        )
        # One O_APPEND write + one fsync, whether this commits one line
        # or a whole shard's worth: every line but possibly the file's
        # final one is complete on disk, which is exactly the torn-line
        # tolerance the loader grants.
        os.write(self._fd, payload)
        os.fsync(self._fd)

    def _write_line(self, obj: dict) -> None:
        self._write_lines([obj])

    @staticmethod
    def _task_line(task_kind: str, key: str, payload: object) -> dict:
        return {
            "v": CHECKPOINT_VERSION,
            "kind": "task",
            "task": task_kind,
            "key": key,
            "data": base64.b64encode(pickle.dumps(payload)).decode("ascii"),
        }

    def record(self, task_kind: str, key: str, payload: object) -> None:
        """Journal one completed task result (atomic, durable)."""
        self._write_line(self._task_line(task_kind, key, payload))

    def record_many(self, records: list) -> None:
        """Group-commit ``(task_kind, key, payload)`` records.

        All lines land in one append and one fsync -- the per-record
        durability cost amortizes over the group (e.g. one shard's
        completed runs) without weakening the crash contract.
        """
        if not records:
            return
        self._write_lines(
            [self._task_line(kind, key, value) for kind, key, value in records]
        )

    def note(self, payload: dict) -> None:
        """Journal an informational note line (never gates resume)."""
        self._write_line(
            {"v": CHECKPOINT_VERSION, "kind": "note", "note": payload}
        )

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
