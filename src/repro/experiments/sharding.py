"""Deterministic shard planning and shared-memory columnar dispatch.

The vectorized batch backend (:mod:`repro.engine.batch`) runs a whole
spec batch in-process on one core; the supervised pool runs scalar
tasks on many cores but pays per-task process and pickling costs. This
module is the seam that composes the two: it partitions a batch into
**lane-contiguous shards** that persistent pool workers execute with
the vectorized backend, and it moves pre-materialized segment columns
between processes through ``multiprocessing.shared_memory`` blocks so
workers *attach* to the data instead of unpickling per-spec segment
lists.

Determinism contract (pinned by the differential tests and stated in
``docs/PERFORMANCE.md``):

* :func:`plan_shards` is a pure function of ``(total, shards)`` --
  shard ``k`` always covers the same contiguous global index range,
  sizes differ by at most one, and earlier shards are never smaller
  than later ones;
* because a batched run's result is independent of which other runs
  share its batch (the batch-no-coupling property, pinned in
  ``tests/properties/test_batch_properties.py``), executing the shards
  separately and merging the per-shard results back in global-index
  order is **bit-identical** to the single-process batch -- at any
  shard count, any job count, and across interrupt/resume;
* :meth:`ShardPlan.digest` names the plan content-addressably so the
  checkpoint journal can record which decomposition produced a run's
  records (informational: resume compatibility is still governed by
  the grid fingerprint alone, so a journal written at ``--shards 4``
  resumes fine at ``--shards 1``).

The shared-memory arena holds four float64 columns per lane
(instructions, cycles, miss flags as 0/1, per-segment latencies with
NaN marking "use the machine default"), concatenated lane after lane in
one block; a compact :class:`LaneRef` table travels with the task and
workers rebuild zero-copy :class:`~repro.workloads.materialize`
``SegmentColumns`` views over the attached buffer. Grid tasks whose
streams are procedural generators ship as compact task descriptors
instead (the worker re-derives the stream from the seed, which
parallelizes materialization itself); the arena path serves
pre-materialized :class:`~repro.workloads.materialize.ColumnStream`
workloads, where re-deriving is impossible and pickling is the cost
being avoided.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.engine.backend import SoeRunSpec, get_backend, numpy_available
from repro.errors import ConfigurationError
from repro.experiments.supervisor import (
    SupervisionPolicy,
    Supervisor,
    check_invariants,
)
from repro.workloads.materialize import ColumnStream, SegmentColumns

__all__ = [
    "SHARD_PLAN_VERSION",
    "MIN_RUNS_PER_SHARD",
    "ShardPlan",
    "plan_shards",
    "resolve_shard_count",
    "LaneRef",
    "ArenaHandle",
    "ColumnArena",
    "attach_columns",
    "run_specs_sharded",
]

#: Bump when the plan layout (and thus its digest) changes meaning.
SHARD_PLAN_VERSION = 1

#: ``--shards auto`` never cuts shards smaller than this: below it the
#: per-shard dispatch overhead (worker round-trip, result frame) eats
#: the win and the in-process batch is simply faster.
MIN_RUNS_PER_SHARD = 4

#: Columns per lane in the shared-memory arena (instructions, cycles,
#: miss flags, miss latencies), all float64.
_ARENA_COLUMNS = 4


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``total`` runs into contiguous shards.

    ``bounds`` has one more entry than there are shards; shard ``k``
    covers global indices ``[bounds[k], bounds[k+1])``.
    """

    total: int
    bounds: Tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    def positions(self, shard: int) -> range:
        """Global indices covered by shard ``shard``."""
        return range(self.bounds[shard], self.bounds[shard + 1])

    def digest(self) -> str:
        """Content address of the plan (stable across processes)."""
        payload = repr((SHARD_PLAN_VERSION, self.total, self.bounds))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def plan_shards(total: int, shards: int) -> ShardPlan:
    """Partition ``total`` runs into ``shards`` lane-contiguous shards.

    Sizes differ by at most one (the remainder goes to the earliest
    shards); a request for more shards than runs degrades to one run
    per shard. Pure and deterministic: the same arguments always yield
    the same plan, which is what keeps sharded execution mergeable in
    global-index order and the plan digest meaningful.
    """
    if total < 0:
        raise ConfigurationError("cannot plan shards for a negative batch")
    if shards < 1:
        raise ConfigurationError("shard count must be >= 1")
    count = min(shards, total) if total else 1
    base, remainder = divmod(total, count)
    bounds = [0]
    for shard in range(count):
        bounds.append(bounds[-1] + base + (1 if shard < remainder else 0))
    return ShardPlan(total=total, bounds=tuple(bounds))


def resolve_shard_count(
    shards: Union[int, str], *, jobs: int, total: int
) -> int:
    """The effective shard count for a batch of ``total`` runs.

    ``"auto"`` falls back to 1 (= the in-process batch) whenever
    sharding cannot pay for itself: a single worker, a batch too small
    to give every worker :data:`MIN_RUNS_PER_SHARD` runs, or no numpy
    (workers could not run the vectorized backend at all). An explicit
    integer is honored, clamped to the batch size.
    """
    if isinstance(shards, str):
        if shards != "auto":
            raise ConfigurationError(
                f"shards must be 'auto' or a positive integer, got {shards!r}"
            )
        if jobs <= 1 or total < 2 * MIN_RUNS_PER_SHARD or not numpy_available():
            return 1
        return max(1, min(jobs, total // MIN_RUNS_PER_SHARD))
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    return min(shards, total) if total else 1


# ---------------------------------------------------------------------------
# Shared-memory column arena
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaneRef:
    """One lane's row range inside an arena block."""

    offset: int
    length: int


@dataclass(frozen=True)
class ArenaHandle:
    """What a worker needs to attach an arena: the block name and its
    row count (the buffer's shape is ``(_ARENA_COLUMNS, rows)``)."""

    name: str
    rows: int


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ConfigurationError(
            "shared-memory columnar dispatch needs numpy, which is not "
            "installed"
        )


class ColumnArena:
    """Parent-side owner of one shared-memory column block.

    The parent packs lanes, ships the :class:`ArenaHandle` plus
    :class:`LaneRef` table to workers, and -- success or failure --
    unlinks the block exactly once. Workers only ever attach and close;
    ownership never transfers, so a crashed worker cannot leak the
    segment (the parent's ``unlink`` in its ``finally`` is the single
    point of release).
    """

    def __init__(self, shm: object, refs: Tuple[LaneRef, ...], rows: int) -> None:
        self._shm = shm
        self.refs = refs
        self.rows = rows

    @classmethod
    def pack(cls, lanes: Sequence[SegmentColumns]) -> "ColumnArena":
        """Copy each lane's columns into one fresh shared-memory block."""
        _require_numpy()
        from multiprocessing import shared_memory

        rows = sum(len(lane) for lane in lanes)
        size = max(rows, 1) * _ARENA_COLUMNS * 8
        shm = shared_memory.SharedMemory(create=True, size=size)
        try:
            data = np.ndarray(
                (_ARENA_COLUMNS, rows), dtype=np.float64, buffer=shm.buf
            )
            refs: List[LaneRef] = []
            offset = 0
            for lane in lanes:
                count = len(lane)
                window = slice(offset, offset + count)
                cached = lane.arrays_cache
                if cached is not None:
                    data[0, window] = cached[0]
                    data[1, window] = cached[1]
                    data[2, window] = cached[2]
                    data[3, window] = cached[3]
                else:
                    data[0, window] = lane.instructions
                    data[1, window] = lane.cycles
                    data[2, window] = np.asarray(
                        lane.ends_with_miss, dtype=np.float64
                    )
                    data[3, window] = lane.miss_latency
                refs.append(LaneRef(offset=offset, length=count))
                offset += count
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, tuple(refs), rows)

    @property
    def handle(self) -> ArenaHandle:
        return ArenaHandle(name=self._shm.name, rows=self.rows)

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._shm is not None:
            self._shm.close()

    def unlink(self) -> None:
        """Remove the block from the system (idempotent; owner only)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


def _attach_block(name: str) -> object:
    """Attach an existing block without disturbing its ownership.

    On Python 3.13+ ``track=False`` keeps the attach out of the
    resource tracker entirely. Older interpreters register every
    attach, but pool workers are *forked* and share the parent's
    already-running tracker, where registration is idempotent -- the
    parent's ``unlink`` performs the single unregister. (A child-side
    unregister would instead erase the parent's registration and make
    that unlink double-unregister.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 signature
        return shared_memory.SharedMemory(name=name)


def attach_columns(
    handle: ArenaHandle, refs: Sequence[LaneRef]
) -> Tuple[object, List[SegmentColumns]]:
    """Worker-side attach: zero-copy column views over the arena.

    Returns the shared-memory object (the caller must ``close()`` it
    after the views are no longer needed -- they alias its buffer) and
    one :class:`SegmentColumns` per requested lane. The float columns
    are direct views; the miss flags are one vectorized comparison per
    lane (bool arrays cannot alias a float buffer).
    """
    _require_numpy()
    shm = _attach_block(handle.name)
    data = np.ndarray(
        (_ARENA_COLUMNS, handle.rows), dtype=np.float64, buffer=shm.buf
    )
    lanes: List[SegmentColumns] = []
    for ref in refs:
        window = slice(ref.offset, ref.offset + ref.length)
        lanes.append(
            SegmentColumns(
                instructions=data[0, window],
                cycles=data[1, window],
                # repro-lint: disable=RL004 - flags are stored as exact 0.0/1.0
                ends_with_miss=data[2, window] != 0.0,
                miss_latency=data[3, window],
                exhausted=True,
            )
        )
    return shm, lanes


# ---------------------------------------------------------------------------
# Spec-level sharded execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SpecShardTask:
    """One shard of column-backed run specs, as compact picklable data.

    ``runs`` holds per-spec ``(fairness, params, limits, policy,
    names)`` tuples; the segment payload travels through the arena, not
    the pickle.
    """

    shard: int
    runs: tuple
    arena: ArenaHandle
    lane_refs: Tuple[LaneRef, ...]
    threads: int


def _run_spec_shard(task: _SpecShardTask) -> list:
    """Pool-worker body: attach the arena, rebuild the specs, run the
    vectorized backend, return the shard's results in lane order."""
    shm, lanes = attach_columns(task.arena, task.lane_refs)
    try:
        specs = []
        for run_index, (fairness, params, limits, policy, names) in enumerate(
            task.runs
        ):
            streams = tuple(
                ColumnStream(
                    lanes[run_index * task.threads + thread],
                    name=names[thread],
                )
                for thread in range(task.threads)
            )
            specs.append(
                SoeRunSpec(
                    streams=streams,
                    fairness=fairness,
                    params=params,
                    limits=limits,
                    policy=policy,
                )
            )
        return get_backend("batch").run_batch(specs)
    finally:
        shm.close()


def run_specs_sharded(
    specs: Sequence[SoeRunSpec],
    *,
    jobs: int,
    shards: Union[int, str] = "auto",
    policy: Optional[SupervisionPolicy] = None,
) -> list:
    """Execute column-backed run specs sharded across a worker pool.

    Every spec must be inside the batch backend's envelope and every
    stream must be a :class:`ColumnStream` (generator-backed workloads
    go through the grid runner, which ships task descriptors instead).
    Results are bit-identical to ``BatchBackend().run_batch(specs)`` at
    any ``jobs``/``shards``: shards are merged in global-index order,
    and any shard the pool could not complete (crash, timeout, drain)
    falls back to the in-process batch. Shared-memory blocks are
    unlinked before returning, on every path.
    """
    specs = list(specs)
    backend = get_backend("batch")
    for index, spec in enumerate(specs):
        if not backend.supports(spec):
            raise ConfigurationError(
                f"spec {index} is outside the batch backend's envelope; "
                "sharded execution has nothing to dispatch it to"
            )
        for stream in spec.streams:
            if not isinstance(stream, ColumnStream):
                raise ConfigurationError(
                    f"spec {index} has a non-columnar stream; sharded "
                    "spec dispatch needs pre-materialized ColumnStream "
                    "workloads (use repro.workloads.materialize.columnize)"
                )
    if not specs:
        return []
    threads = specs[0].num_threads
    if any(spec.num_threads != threads for spec in specs):
        raise ConfigurationError(
            "sharded spec dispatch needs a homogeneous thread count per "
            "call (shard the groups separately)"
        )
    count = resolve_shard_count(shards, jobs=jobs, total=len(specs))
    if count <= 1:
        return backend.run_batch(specs)

    plan = plan_shards(len(specs), count)
    arenas: List[ColumnArena] = []
    results: dict = {}
    try:
        tasks: List[Tuple[int, _SpecShardTask]] = []
        for shard in range(plan.num_shards):
            members = [specs[index] for index in plan.positions(shard)]
            arena = ColumnArena.pack(
                [
                    stream.columns
                    for spec in members
                    for stream in spec.streams
                ]
            )
            arenas.append(arena)
            runs = tuple(
                (
                    spec.fairness,
                    spec.params,
                    spec.limits,
                    spec.policy,
                    tuple(stream.name for stream in spec.streams),
                )
                for spec in members
            )
            tasks.append(
                (
                    shard,
                    _SpecShardTask(
                        shard=shard,
                        runs=runs,
                        arena=arena.handle,
                        lane_refs=arena.refs,
                        threads=threads,
                    ),
                )
            )

        def _collect(shard: int, _task: object, payload: object) -> None:
            results[shard] = payload

        supervisor = Supervisor(
            _run_spec_shard,
            tasks,
            jobs=min(jobs, plan.num_shards),
            policy=policy,
            descriptor=lambda task: ("shard", f"shard{task.shard}"),
            validate=check_invariants,
            on_result=_collect,
            pool=True,
        )
        supervisor.run()

        merged: List[object] = []
        for shard in range(plan.num_shards):
            if shard in results:
                merged.extend(results[shard])
            else:
                # The pool could not complete this shard; the in-process
                # batch is the bit-identical fallback.
                merged.extend(
                    backend.run_batch(
                        [specs[index] for index in plan.positions(shard)]
                    )
                )
        return merged
    finally:
        for arena in arenas:
            arena.unlink()
