"""Trace-file summaries: ``repro trace-summary PATH``.

Reads a JSONL trace (validating every line against the event schema),
aggregates it, and renders a terminal report: switch-cause histogram,
fairness-convergence timelines (per-thread IPC_ST estimates and window
instruction shares across Delta boundaries), and runner task/cache
accounting -- the "why did the mechanism do that?" view the raw event
stream is too fine-grained for.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.metrics.ascii_chart import bar_chart, line_chart
from repro.telemetry.events import validate_event

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "render_summary",
    "render_trace_summary",
    "manifest_metrics",
    "render_manifest_metrics",
]


def _to_float(value: object) -> float:
    """Decode a schema number (non-finite floats travel as strings)."""
    return float(value)


@dataclass
class TraceSummary:
    """Aggregates of one trace file."""

    events: int = 0
    #: switch cause -> count (both substrates combined)
    switch_causes: dict = field(default_factory=dict)
    segments: int = 0
    stalls: int = 0
    stall_cycles: float = 0.0
    #: Delta boundaries: (time, ipc_st per thread, instructions per thread)
    sample_times: list = field(default_factory=list)
    sample_ipc_st: list = field(default_factory=list)
    sample_instructions: list = field(default_factory=list)
    #: task kind -> [count, total wall seconds]
    tasks: dict = field(default_factory=dict)
    workers: set = field(default_factory=set)
    cache_hits: int = 0
    cache_misses: int = 0
    #: entries quarantined as corrupt / stale tmp files swept
    cache_corrupt: int = 0
    cache_swept: int = 0
    #: failure reason -> retry count / exhausted-task count
    task_retries: dict = field(default_factory=dict)
    task_failures: dict = field(default_factory=dict)
    #: checkpoint records written / tasks prefilled by resume
    checkpoint_writes: int = 0
    checkpoint_resumed: int = 0

    @property
    def num_threads(self) -> int:
        return len(self.sample_ipc_st[0]) if self.sample_ipc_st else 0


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Parse, validate, and aggregate a JSONL trace file."""
    summary = TraceSummary()
    trace = Path(path)
    if not trace.exists():
        raise ConfigurationError(f"trace file not found: {trace}")
    with trace.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                event = validate_event(json.loads(line))
            except (json.JSONDecodeError, ConfigurationError) as error:
                raise ConfigurationError(f"{trace}:{line_no}: {error}") from error
            summary.events += 1
            name = event["event"]
            if name == "switch":
                cause = event["cause"]
                summary.switch_causes[cause] = summary.switch_causes.get(cause, 0) + 1
            elif name == "segment":
                summary.segments += 1
            elif name == "stall":
                summary.stalls += 1
                summary.stall_cycles += _to_float(event["duration"])
            elif name == "sample":
                summary.sample_times.append(_to_float(event["t"]))
                summary.sample_ipc_st.append(
                    [_to_float(v) for v in event["ipc_st"]]
                )
                summary.sample_instructions.append(
                    [_to_float(v) for v in event["instructions"]]
                )
            elif name == "task":
                if event["phase"] == "stop":
                    count, wall = summary.tasks.get(event["kind"], (0, 0.0))
                    wall_s = event["wall_s"]
                    summary.tasks[event["kind"]] = (
                        count + 1,
                        wall + (_to_float(wall_s) if wall_s is not None else 0.0),
                    )
                summary.workers.add(event["worker"])
            elif name == "cache":
                outcome = event["outcome"]
                if outcome == "hit":
                    summary.cache_hits += 1
                elif outcome == "miss":
                    summary.cache_misses += 1
                elif outcome == "corrupt":
                    summary.cache_corrupt += 1
                elif outcome == "sweep":
                    summary.cache_swept += 1
            elif name == "task_retry":
                reason = event["reason"]
                summary.task_retries[reason] = (
                    summary.task_retries.get(reason, 0) + 1
                )
            elif name == "task_failed":
                reason = event["reason"]
                summary.task_failures[reason] = (
                    summary.task_failures.get(reason, 0) + 1
                )
            elif name == "checkpoint":
                if event["action"] == "write":
                    summary.checkpoint_writes += int(event["tasks"])
                else:
                    summary.checkpoint_resumed += int(event["tasks"])
    return summary


def _convergence_charts(summary: TraceSummary) -> list:
    """Per-thread IPC_ST estimates and window-instruction shares over
    time -- converging shares are the mechanism doing its job."""
    sections = []
    n = summary.num_threads
    if len(summary.sample_times) < 2 or n == 0:
        sections.append(
            "(fewer than two controller samples; no convergence timeline)"
        )
        return sections
    ipc_series = {
        f"T{j} IPC_ST": [row[j] for row in summary.sample_ipc_st] for j in range(n)
    }
    sections.append("Estimated single-thread IPC per Delta window:")
    sections.append(
        line_chart(ipc_series, x_values=summary.sample_times, y_label="IPC_ST")
    )
    shares = []
    for row in summary.sample_instructions:
        total = sum(row)
        shares.append([v / total if total else 0.0 for v in row])
    share_series = {
        f"T{j} share": [row[j] for row in shares] for j in range(n)
    }
    sections.append("")
    sections.append("Window instruction share per thread (fairness convergence):")
    sections.append(
        line_chart(share_series, x_values=summary.sample_times, y_label="share")
    )
    return sections


def render_summary(summary: TraceSummary) -> str:
    """Render an aggregated trace as terminal text."""
    lines = ["Trace summary", "============="]
    lines.append(f"events: {summary.events}")
    lines.append("")
    if summary.switch_causes:
        lines.append("Thread switches by cause:")
        ordered = dict(
            sorted(summary.switch_causes.items(), key=lambda kv: -kv[1])
        )
        lines.append(bar_chart(ordered))
    else:
        lines.append("(no switch events in this trace)")
    if summary.segments or summary.stalls:
        lines.append("")
        lines.append(
            f"segments completed: {summary.segments}; idle stalls: "
            f"{summary.stalls} ({summary.stall_cycles:.0f} cycles)"
        )
    lines.append("")
    lines.append(
        f"Controller samples: {len(summary.sample_times)} Delta boundaries"
    )
    lines.extend(_convergence_charts(summary))
    if summary.tasks or summary.cache_hits or summary.cache_misses:
        lines.append("")
        lines.append("Runner tasks:")
        for kind, (count, wall) in sorted(summary.tasks.items()):
            lines.append(f"  {kind:12s} {count:5d} tasks  {wall:9.3f} s wall")
        if summary.workers:
            lines.append(f"  workers: {len(summary.workers)}")
        if summary.cache_hits or summary.cache_misses:
            lines.append(
                f"  result cache: {summary.cache_hits} hits / "
                f"{summary.cache_misses} misses"
            )
    robustness = (
        summary.task_retries
        or summary.task_failures
        or summary.cache_corrupt
        or summary.cache_swept
        or summary.checkpoint_writes
        or summary.checkpoint_resumed
    )
    if robustness:
        lines.append("")
        lines.append("Robustness:")
        if summary.task_retries:
            retried = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(summary.task_retries.items())
            )
            lines.append(f"  retries by reason: {retried}")
        if summary.task_failures:
            failed = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(summary.task_failures.items())
            )
            lines.append(f"  exhausted tasks by reason: {failed}")
        if summary.cache_corrupt or summary.cache_swept:
            lines.append(
                f"  cache hygiene: {summary.cache_corrupt} quarantined / "
                f"{summary.cache_swept} stale tmp swept"
            )
        if summary.checkpoint_writes or summary.checkpoint_resumed:
            lines.append(
                f"  checkpoint: {summary.checkpoint_writes} tasks journaled / "
                f"{summary.checkpoint_resumed} resumed"
            )
    return "\n".join(lines)


def manifest_metrics(path: Union[str, Path]) -> Optional[dict]:
    """The run's profiling manifest, if one sits next to the trace.

    A traced CLI run writes ``<trace>.manifest.json`` (see
    :mod:`repro.telemetry.profile`); its throughput counters are the
    same ones the perf harness records in ``BENCH_*.json``.
    """
    manifest_path = Path(f"{path}.manifest.json")
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"unreadable run manifest {manifest_path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise ConfigurationError(
            f"run manifest {manifest_path} must be a JSON object"
        )
    return manifest


def render_manifest_metrics(manifest: dict) -> str:
    """Render the manifest's perf counters as a report section."""
    lines = ["Run profile (from the profiling manifest):"]
    wall = manifest.get("wall_seconds")
    workers = manifest.get("workers")
    if wall is not None:
        suffix = f" across {workers} worker(s)" if workers else ""
        lines.append(f"  wall time: {float(wall):.3f} s{suffix}")
    events_per_sec = manifest.get("events_per_sec")
    if events_per_sec is not None:
        lines.append(
            f"  events/sec: {float(events_per_sec):,.0f} "
            f"({int(manifest.get('events', 0))} events)"
        )
    cycles_per_sec = manifest.get("simulated_cycles_per_sec")
    if cycles_per_sec is not None:
        lines.append(
            f"  simulated cycles/sec: {float(cycles_per_sec):,.0f} "
            f"({float(manifest.get('simulated_cycles', 0.0)):,.0f} cycles)"
        )
    peak_rss = manifest.get("peak_rss_bytes")
    if peak_rss:
        lines.append(f"  peak RSS: {int(peak_rss) / (1 << 20):.1f} MiB")
    return "\n".join(lines)


def render_trace_summary(path: Union[str, Path]) -> str:
    """Summarize and render a trace file in one step (the CLI entry).

    When the run's ``<trace>.manifest.json`` exists, its throughput
    counters (events/sec, simulated cycles/sec, peak RSS) are appended,
    so traced runs expose the same perf counters the harness records.
    """
    text = render_summary(summarize_trace(path))
    manifest = manifest_metrics(path)
    if manifest is not None:
        text += "\n\n" + render_manifest_metrics(manifest)
    return text
