"""Run profiling: where the simulator's wall-clock goes.

A traced run accumulates three cheap counters per process -- events
emitted, simulated cycles executed, grid tasks completed (with their
wall time) -- in the module-level :data:`PROFILE` accumulator. The
accumulator is fork-aware: a multiprocessing worker inherits the
parent's state at fork, so the first record in a new process resets it,
and the grid runner merges each worker's final snapshot back into the
parent. The CLI turns the merged totals into a :class:`RunManifest`
(config hash, seed, events/sec, simulated-cycles/sec, peak RSS) written
next to the trace file; CI surfaces those numbers per-PR.

Profiling never influences simulation results: it only reads counters
the run produces anyway.
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:
    from _typeshed import DataclassInstance

__all__ = [
    "WorkerProfile",
    "ProfileAccumulator",
    "PROFILE",
    "RunManifest",
    "merge_latest",
    "config_fingerprint",
    "build_manifest",
    "write_manifest",
]


def _peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


@dataclass(frozen=True)
class WorkerProfile:
    """One process's profiling totals (the picklable merge unit)."""

    pid: int
    events: int = 0
    simulated_cycles: float = 0.0
    tasks: int = 0
    task_seconds: float = 0.0
    peak_rss_bytes: int = 0


class ProfileAccumulator:
    """Per-process profiling counters (monotonic within one process).

    All record methods are O(1) and allocation-free; a forked child
    lazily resets itself on its first record so worker totals never
    double-count the parent's.
    """

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._events = 0
        self._simulated_cycles = 0.0
        self._tasks = 0
        self._task_seconds = 0.0

    def _check_process(self) -> None:
        if os.getpid() != self._pid:
            self.reset()

    def reset(self) -> None:
        """Zero the counters (and adopt the current process)."""
        self._pid = os.getpid()
        self._events = 0
        self._simulated_cycles = 0.0
        self._tasks = 0
        self._task_seconds = 0.0

    def record_event(self) -> None:
        """Account one emitted trace event."""
        self._check_process()
        self._events += 1

    def record_cycles(self, cycles: float) -> None:
        """Account ``cycles`` of completed simulated time."""
        self._check_process()
        self._simulated_cycles += cycles

    def record_task(self, wall_seconds: float) -> None:
        """Account one completed grid task and its wall time."""
        self._check_process()
        self._tasks += 1
        self._task_seconds += wall_seconds

    def snapshot(self) -> WorkerProfile:
        """An immutable copy of this process's totals so far."""
        self._check_process()
        return WorkerProfile(
            pid=self._pid,
            events=self._events,
            simulated_cycles=self._simulated_cycles,
            tasks=self._tasks,
            task_seconds=self._task_seconds,
            peak_rss_bytes=_peak_rss_bytes(),
        )

    def merge(self, worker: WorkerProfile) -> None:
        """Fold a (foreign) worker's totals into this process's."""
        self._check_process()
        self._events += worker.events
        self._simulated_cycles += worker.simulated_cycles
        self._tasks += worker.tasks
        self._task_seconds += worker.task_seconds


def merge_latest(a: WorkerProfile, b: WorkerProfile) -> WorkerProfile:
    """The later of two snapshots from the *same* process.

    Counters are monotonic within a process, so the field-wise maximum
    is exactly the more recent snapshot -- robust even when task results
    come back in task order rather than completion order.
    """
    return WorkerProfile(
        pid=a.pid,
        events=max(a.events, b.events),
        simulated_cycles=max(a.simulated_cycles, b.simulated_cycles),
        tasks=max(a.tasks, b.tasks),
        task_seconds=max(a.task_seconds, b.task_seconds),
        peak_rss_bytes=max(a.peak_rss_bytes, b.peak_rss_bytes),
    )


#: The ambient per-process accumulator every instrumentation site feeds.
PROFILE = ProfileAccumulator()


@dataclass(frozen=True)
class RunManifest:
    """Summary of one traced run, written as ``<trace>.manifest.json``."""

    schema_version: int
    config_hash: str
    seed: int
    wall_seconds: float
    workers: int
    events: int
    simulated_cycles: float
    tasks: int
    events_per_sec: float
    simulated_cycles_per_sec: float
    peak_rss_bytes: int


def config_fingerprint(config: "DataclassInstance") -> str:
    """Digest identifying what was computed: every config field plus
    the simulator code version (same inputs as the result-cache key)."""
    from repro.experiments.runner import code_version

    fingerprint = (
        code_version(),
        tuple(
            (field.name, repr(getattr(config, field.name)))
            for field in dataclass_fields(config)
        ),
    )
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()[:16]


def build_manifest(
    config: "DataclassInstance",
    wall_seconds: float,
    workers: int,
    profile: WorkerProfile,
) -> RunManifest:
    """Assemble the manifest for a finished traced run."""
    wall = max(wall_seconds, 1e-9)
    return RunManifest(
        schema_version=1,
        config_hash=config_fingerprint(config),
        seed=int(getattr(config, "seed", 0)),
        wall_seconds=wall_seconds,
        workers=workers,
        events=profile.events,
        simulated_cycles=profile.simulated_cycles,
        tasks=profile.tasks,
        events_per_sec=profile.events / wall,
        simulated_cycles_per_sec=profile.simulated_cycles / wall,
        peak_rss_bytes=profile.peak_rss_bytes,
    )


def write_manifest(manifest: RunManifest, path: Union[str, Path]) -> None:
    """Write the manifest as pretty-printed JSON (parents created)."""
    from repro.experiments.io import write_json

    write_json(manifest, path)
