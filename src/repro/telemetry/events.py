"""Typed trace events and their line schema.

Every trace line is one JSON object with a fixed envelope:

* ``event`` -- the event name (one per builder function below);
* ``cat``   -- the event's category, one of :data:`CATEGORIES`
  (``controller`` = Delta-boundary mechanism samples, ``switch`` =
  engine-level thread scheduling, ``runner`` = experiment-grid task
  execution);
* ``v``     -- the schema version (:data:`SCHEMA_VERSION`);
* payload fields as listed in :data:`EVENT_SCHEMAS`.

Events are plain dicts (cheap to build, trivially serializable); the
builder functions are the only place they are constructed, so the
schema table below is authoritative. Non-finite floats (an ``inf``
quota before the first estimate, an ``inf`` deficit) are encoded as the
strings ``"inf"`` / ``"-inf"`` so every line stays strict JSON.

:func:`validate_event` / :func:`validate_trace_file` check conformance;
the CI grid-smoke job validates every line of its trace artifact.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "CONTROLLER",
    "SWITCH",
    "RUNNER",
    "CATEGORIES",
    "SWITCH_CAUSES",
    "EVENT_SCHEMAS",
    "parse_categories",
    "controller_sample",
    "thread_switch",
    "segment_end",
    "stall",
    "task_event",
    "task_retry",
    "task_failed",
    "batch_event",
    "shard_event",
    "cache_event",
    "checkpoint_event",
    "job_event",
    "queue_event",
    "breaker_event",
    "sink_degraded_event",
    "validate_event",
    "validate_trace_file",
]

#: Bump when an event's envelope or payload layout changes.
#: v2: ``task`` events carry the switch policy enforcing the run.
#: v3: ``task_retry`` carries the deterministic retry backoff
#: (``backoff_s``); new service-layer events ``job``/``queue``/
#: ``breaker`` and the sink self-report ``sink_degraded``.
SCHEMA_VERSION = 3

CONTROLLER = "controller"
SWITCH = "switch"
RUNNER = "runner"

#: The three event categories (``--trace-events`` selects a subset).
CATEGORIES = frozenset((CONTROLLER, SWITCH, RUNNER))

#: Why a thread yielded the core (matches ``SwitchPolicy.on_switch_out``).
SWITCH_CAUSES = frozenset(("miss", "quota", "cycle_quota", "done"))

#: The simulation substrate an engine-level event came from.
_SUBSTRATES = frozenset(("engine", "cpu"))

_TASK_PHASES = frozenset(("start", "stop"))
#: ``corrupt`` = a quarantined cache entry, ``sweep`` = a stale temp
#: file removed at startup (see docs/ROBUSTNESS.md).
_CACHE_OUTCOMES = frozenset(("hit", "miss", "corrupt", "sweep"))
#: Failure classifications (mirrors :data:`repro.errors.FAILURE_REASONS`).
_FAILURE_REASONS = frozenset(("timeout", "crash", "invariant", "error"))
_CHECKPOINT_ACTIONS = frozenset(("write", "resume"))
_BATCH_PHASES = frozenset(("start", "stop"))
_SHARD_PHASES = frozenset(("start", "stop"))
#: Job lifecycle phases of the simulation service (docs/SERVICE.md).
_JOB_PHASES = frozenset(
    (
        "submitted",  # admitted into a tenant queue
        "cached",     # answered from the result cache / journal, no run
        "dispatched",  # handed to a pool worker
        "completed",  # result accepted and journaled
        "failed",     # exhausted its retry budget
        "expired",    # deadline passed before completion
        "rejected",   # refused at admission (backpressure / drain)
        "resumed",    # re-enqueued from the journal after a restart
    )
)
_QUEUE_ACTIONS = frozenset(("enqueue", "dispatch", "reject"))
_BREAKER_STATES = frozenset(("closed", "open", "half_open"))

Number = Union[int, float, str]


def parse_categories(text: Optional[str]) -> Optional[frozenset]:
    """Parse a ``--trace-events`` value ("controller,switch", ...).

    Returns None (= every category) for None or empty input; raises
    :class:`~repro.errors.ConfigurationError` on unknown names.
    """
    if text is None or not text.strip():
        return None
    names = frozenset(part.strip() for part in text.split(",") if part.strip())
    unknown = names - CATEGORIES
    if unknown:
        raise ConfigurationError(
            f"unknown trace categories {sorted(unknown)}; "
            f"choose from {sorted(CATEGORIES)}"
        )
    return names


def _num(value: float) -> Number:
    """Encode a float JSON-strictly (non-finite values as strings)."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


def _nums(values: Sequence[float]) -> list:
    return [_num(v) for v in values]


# ---------------------------------------------------------------------------
# Builders (the only constructors of trace events)
# ---------------------------------------------------------------------------


def controller_sample(
    time: float,
    instructions: Sequence[float],
    cycles: Sequence[float],
    misses: Sequence[int],
    ipc_st: Sequence[float],
    quotas: Sequence[float],
    deficits: Sequence[float],
) -> dict:
    """One ``Delta`` boundary of the fairness mechanism.

    Per-thread arrays are index-aligned: the counter snapshots of the
    window just closed (``instructions``/``cycles``/``misses``), the
    Eq. 13 single-thread IPC estimates derived from them, the Eq. 9
    ``IPSw`` quotas now in force, and the deficit-counter values.
    """
    return {
        "event": "sample",
        "cat": CONTROLLER,
        "v": SCHEMA_VERSION,
        "t": _num(time),
        "instructions": _nums(instructions),
        "cycles": _nums(cycles),
        "misses": list(misses),
        "ipc_st": _nums(ipc_st),
        "quotas": _nums(quotas),
        "deficits": _nums(deficits),
    }


def thread_switch(time: float, thread_id: int, cause: str, substrate: str) -> dict:
    """The active thread yielded the core (with the reason why)."""
    return {
        "event": "switch",
        "cat": SWITCH,
        "v": SCHEMA_VERSION,
        "t": _num(time),
        "thread": thread_id,
        "cause": cause,
        "substrate": substrate,
    }


def segment_end(time: float, thread_id: int, latency: Optional[float]) -> dict:
    """A segment-model thread finished one instruction segment.

    ``latency`` is the miss latency the segment ends with (None for a
    miss-free join between segments or end-of-stream).
    """
    return {
        "event": "segment",
        "cat": SWITCH,
        "v": SCHEMA_VERSION,
        "t": _num(time),
        "thread": thread_id,
        "latency": None if latency is None else _num(latency),
    }


def stall(time: float, duration: float, substrate: str) -> dict:
    """The core went idle (no thread ready) for ``duration`` cycles."""
    return {
        "event": "stall",
        "cat": SWITCH,
        "v": SCHEMA_VERSION,
        "t": _num(time),
        "duration": _num(duration),
        "substrate": substrate,
    }


def task_event(
    phase: str,
    kind: str,
    label: str,
    worker: int,
    wall_s: Optional[float] = None,
    policy: Optional[str] = None,
) -> dict:
    """One experiment-grid task starting or stopping on a worker.

    ``worker`` is the executing process id; ``wall_s`` is the task's
    wall-clock duration (stop events only). ``policy`` names the
    registered switch policy enforcing the run (None for tasks with no
    policy dimension, e.g. single-thread baselines).
    """
    return {
        "event": "task",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "phase": phase,
        "kind": kind,
        "label": label,
        "worker": worker,
        "wall_s": None if wall_s is None else _num(wall_s),
        "policy": policy,
    }


def task_retry(
    kind: str, label: str, attempt: int, reason: str,
    backoff_s: float = 0.0,
) -> dict:
    """A failed grid task is being retried (``attempt`` starts next).

    ``reason`` classifies the failure that triggered the retry using
    the taxonomy of :mod:`repro.errors` (timeout/crash/invariant/error);
    ``backoff_s`` is the deterministic seeded-jitter delay before the
    retry launches (0 = immediate respawn).
    """
    return {
        "event": "task_retry",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "attempt": attempt,
        "reason": reason,
        "backoff_s": _num(backoff_s),
    }


def task_failed(kind: str, label: str, attempts: int, reason: str) -> dict:
    """A grid task exhausted its retry budget and was abandoned."""
    return {
        "event": "task_failed",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "attempts": attempts,
        "reason": reason,
    }


def batch_event(
    phase: str,
    backend: str,
    runs: int,
    iterations: Optional[int] = None,
) -> dict:
    """A vectorized batch of engine runs starting or stopping.

    The batch backend advances many runs per data-parallel iteration,
    so per-event tracing does not apply; this single event reports the
    batch's shape (``runs``) and, on stop, how many lockstep iterations
    it took.
    """
    return {
        "event": "batch",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "phase": phase,
        "backend": backend,
        "runs": runs,
        "iterations": iterations,
    }


def shard_event(phase: str, shard: int, shards: int, runs: int, backend: str) -> dict:
    """One shard of a sharded batch dispatching to (or returning from)
    a pool worker.

    ``shard`` is the zero-based shard index within a plan of ``shards``
    shards, ``runs`` the number of batched runs the shard covers, and
    ``backend`` the engine backend the worker executes it on.
    """
    return {
        "event": "shard",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "phase": phase,
        "shard": shard,
        "shards": shards,
        "runs": runs,
        "backend": backend,
    }


def cache_event(outcome: str, label: str) -> dict:
    """One on-disk result-cache event for a grid cell or cache file.

    ``hit``/``miss`` describe lookups; ``corrupt`` reports an entry
    quarantined on load; ``sweep`` reports a stale temp file removed.
    """
    return {
        "event": "cache",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "outcome": outcome,
        "label": label,
    }


def checkpoint_event(action: str, tasks: int, path: str) -> dict:
    """Checkpoint-journal activity: a task record written, or a resume
    that skipped ``tasks`` already-completed tasks."""
    return {
        "event": "checkpoint",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "action": action,
        "tasks": tasks,
        "path": path,
    }


def job_event(phase: str, tenant: str, job: str, detail: Optional[str] = None) -> dict:
    """One simulation-service job crossing a lifecycle boundary.

    ``job`` is the job's content-hash id; ``detail`` carries the
    phase-specific annotation (failure reason, rejection cause, the
    cache/journal source of a ``cached`` answer).
    """
    return {
        "event": "job",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "phase": phase,
        "tenant": tenant,
        "job": job,
        "detail": detail,
    }


def queue_event(action: str, tenant: str, depth: int, deficit: float) -> dict:
    """One per-tenant DRR queue transition in the simulation service.

    ``depth`` is the tenant's queue depth after the action; ``deficit``
    the tenant's deficit-counter value (the service-layer analogue of
    the paper's Eq. 9 per-thread deficit counters).
    """
    return {
        "event": "queue",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "action": action,
        "tenant": tenant,
        "depth": depth,
        "deficit": _num(deficit),
    }


def breaker_event(state: str, failures: int) -> dict:
    """The service circuit breaker changed state.

    ``failures`` is the number of crash/timeout outcomes in the rolling
    window at the moment of the transition.
    """
    return {
        "event": "breaker",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "state": state,
        "failures": failures,
    }


def sink_degraded_event(path: str, error: str) -> dict:
    """A JSONL trace sink hit an unwritable file (ENOSPC/EPIPE/...) and
    degraded to a null sink; simulation results are unaffected."""
    return {
        "event": "sink_degraded",
        "cat": RUNNER,
        "v": SCHEMA_VERSION,
        "path": path,
        "error": error,
    }


# ---------------------------------------------------------------------------
# Schema + validation
# ---------------------------------------------------------------------------


def _is_number(value: object) -> bool:
    """A finite JSON number or an encoded non-finite float string."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return math.isfinite(value)
    return value in ("inf", "-inf", "nan")


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _number_list(value: object) -> bool:
    return isinstance(value, list) and all(_is_number(v) for v in value)


def _int_list(value: object) -> bool:
    return isinstance(value, list) and all(_is_int(v) for v in value)


def _optional_number(value: object) -> bool:
    return value is None or _is_number(value)


def _optional_int(value: object) -> bool:
    return value is None or _is_int(value)


def _string(value: object) -> bool:
    return isinstance(value, str)


def _optional_string(value: object) -> bool:
    return value is None or isinstance(value, str)


def _enum(*allowed: str) -> Callable[[object], bool]:
    def check(value: object) -> bool:
        return value in allowed

    return check


#: event name -> (category, {payload field -> validator}).
EVENT_SCHEMAS: Mapping[str, tuple] = {
    "sample": (
        CONTROLLER,
        {
            "t": _is_number,
            "instructions": _number_list,
            "cycles": _number_list,
            "misses": _int_list,
            "ipc_st": _number_list,
            "quotas": _number_list,
            "deficits": _number_list,
        },
    ),
    "switch": (
        SWITCH,
        {
            "t": _is_number,
            "thread": _is_int,
            "cause": _enum(*SWITCH_CAUSES),
            "substrate": _enum(*_SUBSTRATES),
        },
    ),
    "segment": (
        SWITCH,
        {
            "t": _is_number,
            "thread": _is_int,
            "latency": _optional_number,
        },
    ),
    "stall": (
        SWITCH,
        {
            "t": _is_number,
            "duration": _is_number,
            "substrate": _enum(*_SUBSTRATES),
        },
    ),
    "task": (
        RUNNER,
        {
            "phase": _enum(*_TASK_PHASES),
            "kind": _string,
            "label": _string,
            "worker": _is_int,
            "wall_s": _optional_number,
            "policy": _optional_string,
        },
    ),
    "task_retry": (
        RUNNER,
        {
            "kind": _string,
            "label": _string,
            "attempt": _is_int,
            "reason": _enum(*_FAILURE_REASONS),
            "backoff_s": _is_number,
        },
    ),
    "task_failed": (
        RUNNER,
        {
            "kind": _string,
            "label": _string,
            "attempts": _is_int,
            "reason": _enum(*_FAILURE_REASONS),
        },
    ),
    "batch": (
        RUNNER,
        {
            "phase": _enum(*_BATCH_PHASES),
            "backend": _string,
            "runs": _is_int,
            "iterations": _optional_int,
        },
    ),
    "shard": (
        RUNNER,
        {
            "phase": _enum(*_SHARD_PHASES),
            "shard": _is_int,
            "shards": _is_int,
            "runs": _is_int,
            "backend": _string,
        },
    ),
    "cache": (
        RUNNER,
        {
            "outcome": _enum(*_CACHE_OUTCOMES),
            "label": _string,
        },
    ),
    "checkpoint": (
        RUNNER,
        {
            "action": _enum(*_CHECKPOINT_ACTIONS),
            "tasks": _is_int,
            "path": _string,
        },
    ),
    "job": (
        RUNNER,
        {
            "phase": _enum(*_JOB_PHASES),
            "tenant": _string,
            "job": _string,
            "detail": _optional_string,
        },
    ),
    "queue": (
        RUNNER,
        {
            "action": _enum(*_QUEUE_ACTIONS),
            "tenant": _string,
            "depth": _is_int,
            "deficit": _is_number,
        },
    ),
    "breaker": (
        RUNNER,
        {
            "state": _enum(*_BREAKER_STATES),
            "failures": _is_int,
        },
    ),
    "sink_degraded": (
        RUNNER,
        {
            "path": _string,
            "error": _string,
        },
    ),
}

_ENVELOPE = ("event", "cat", "v")


def validate_event(obj: object) -> dict:
    """Check one decoded trace line against the event schema.

    Returns the event unchanged on success; raises
    :class:`~repro.errors.ConfigurationError` describing the first
    violation otherwise. Validation is strict: unknown events, missing
    fields, extra fields, and type mismatches are all rejected.
    """
    if not isinstance(obj, dict):
        raise ConfigurationError(
            f"trace event must be an object, got {type(obj).__name__}"
        )
    name = obj.get("event")
    if name not in EVENT_SCHEMAS:
        raise ConfigurationError(f"unknown trace event {name!r}")
    category, fields = EVENT_SCHEMAS[name]
    if obj.get("cat") != category:
        raise ConfigurationError(
            f"event {name!r} must have cat={category!r}, got {obj.get('cat')!r}"
        )
    if obj.get("v") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"event {name!r} has schema version {obj.get('v')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    expected = set(_ENVELOPE) | set(fields)
    actual = set(obj)
    missing = expected - actual
    if missing:
        raise ConfigurationError(f"event {name!r} is missing fields {sorted(missing)}")
    extra = actual - expected
    if extra:
        raise ConfigurationError(f"event {name!r} has unknown fields {sorted(extra)}")
    for field, check in fields.items():
        if not check(obj[field]):
            raise ConfigurationError(
                f"event {name!r} field {field!r} has invalid value {obj[field]!r}"
            )
    return obj


def validate_trace_file(path: Union[str, Path]) -> int:
    """Validate every line of a JSONL trace; returns the event count.

    Raises :class:`~repro.errors.ConfigurationError` (with the line
    number) on the first malformed or schema-violating line.
    """
    count = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{line_no}: not valid JSON ({error})"
                ) from error
            try:
                validate_event(obj)
            except ConfigurationError as error:
                raise ConfigurationError(f"{path}:{line_no}: {error}") from error
            count += 1
    return count
