"""Trace sinks: where emitted events go.

Instrumentation sites hold a :class:`TraceSink` and guard every
emission with ``sink.wants(category)``, so the cost of tracing is
decided here:

* :class:`NullSink` -- the default. ``wants`` is a constant ``False``
  and instrumentation sites that resolve a disabled sink drop their
  reference entirely, so an untraced run pays (at most) one attribute
  test per potential event.
* :class:`RingBufferSink` -- keeps the last ``capacity`` events in
  memory. For tests, interactive inspection, and flight-recorder style
  "what just happened" debugging.
* :class:`JsonlSink` -- streams events to a file, one JSON object per
  line. Fork-safe: a multiprocessing worker that inherits the sink
  lazily reopens the file in its own process, and every event is
  written with a single ``O_APPEND`` write so concurrent workers never
  interleave partial lines.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.telemetry.events import CATEGORIES
from repro.telemetry.profile import PROFILE

__all__ = ["TraceSink", "NullSink", "RingBufferSink", "JsonlSink"]


class TraceSink:
    """Base class / protocol for trace event consumers.

    ``categories`` restricts the sink to a subset of
    :data:`~repro.telemetry.events.CATEGORIES` (None = everything);
    emitters must check :meth:`wants` before building an event, which is
    what keeps filtered-out instrumentation close to free.
    """

    #: False only for :class:`NullSink`; lets holders drop the sink.
    enabled: bool = True

    def __init__(self, categories: Optional[frozenset] = None) -> None:
        if categories is not None:
            categories = frozenset(categories)
            unknown = categories - CATEGORIES
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"choose from {sorted(CATEGORIES)}"
                )
        self.categories = categories
        #: Events accepted by :meth:`emit` over the sink's lifetime.
        self.emitted = 0

    def wants(self, category: str) -> bool:
        """Should events of ``category`` be built and emitted at all?"""
        return self.categories is None or category in self.categories

    def emit(self, event: Mapping[str, object]) -> None:
        """Consume one event (a dict built by :mod:`.events`)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further emits are undefined."""


class NullSink(TraceSink):
    """The zero-cost default: accepts nothing, stores nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(None)

    def wants(self, category: str) -> bool:
        return False

    def emit(self, event: Mapping[str, object]) -> None:  # pragma: no cover
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(
        self, capacity: int = 4096, categories: Optional[frozenset] = None
    ) -> None:
        super().__init__(categories)
        if capacity < 1:
            raise ConfigurationError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: Mapping[str, object]) -> None:
        self._buffer.append(dict(event))
        self.emitted += 1
        PROFILE.record_event()

    @property
    def events(self) -> list:
        """The buffered events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink(TraceSink):
    """Streams events to ``path``, one compact JSON object per line.

    The file descriptor is opened lazily and per-process: after a
    ``fork`` each worker reopens the file itself, and lines are written
    with one ``os.write`` to an ``O_APPEND`` descriptor, so a shared
    trace file collects whole lines from every worker.
    """

    def __init__(
        self, path: Union[str, Path], categories: Optional[frozenset] = None
    ) -> None:
        super().__init__(categories)
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._fd_pid: Optional[int] = None

    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._fd_pid != pid:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._fd_pid = pid
        return self._fd

    def emit(self, event: Mapping[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"), allow_nan=False)
        os.write(self._descriptor(), line.encode("utf-8") + b"\n")
        self.emitted += 1
        PROFILE.record_event()

    def close(self) -> None:
        if self._fd is not None and self._fd_pid == os.getpid():
            os.close(self._fd)
        self._fd = None
        self._fd_pid = None
