"""Trace sinks: where emitted events go.

Instrumentation sites hold a :class:`TraceSink` and guard every
emission with ``sink.wants(category)``, so the cost of tracing is
decided here:

* :class:`NullSink` -- the default. ``wants`` is a constant ``False``
  and instrumentation sites that resolve a disabled sink drop their
  reference entirely, so an untraced run pays (at most) one attribute
  test per potential event.
* :class:`RingBufferSink` -- keeps the last ``capacity`` events in
  memory. For tests, interactive inspection, and flight-recorder style
  "what just happened" debugging.
* :class:`JsonlSink` -- streams events to a file, one JSON object per
  line. Fork-safe: a multiprocessing worker that inherits the sink
  lazily reopens the file in its own process, and every event is
  written with a single ``O_APPEND`` write so concurrent workers never
  interleave partial lines.
"""

from __future__ import annotations

import json
import os
import sys
from collections import deque
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.telemetry.events import CATEGORIES, sink_degraded_event
from repro.telemetry.profile import PROFILE

__all__ = ["TraceSink", "NullSink", "RingBufferSink", "JsonlSink"]


class TraceSink:
    """Base class / protocol for trace event consumers.

    ``categories`` restricts the sink to a subset of
    :data:`~repro.telemetry.events.CATEGORIES` (None = everything);
    emitters must check :meth:`wants` before building an event, which is
    what keeps filtered-out instrumentation close to free.
    """

    #: False only for :class:`NullSink`; lets holders drop the sink.
    enabled: bool = True

    def __init__(self, categories: Optional[frozenset] = None) -> None:
        if categories is not None:
            categories = frozenset(categories)
            unknown = categories - CATEGORIES
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"choose from {sorted(CATEGORIES)}"
                )
        self.categories = categories
        #: Events accepted by :meth:`emit` over the sink's lifetime.
        self.emitted = 0

    def wants(self, category: str) -> bool:
        """Should events of ``category`` be built and emitted at all?"""
        return self.categories is None or category in self.categories

    def emit(self, event: Mapping[str, object]) -> None:
        """Consume one event (a dict built by :mod:`.events`)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further emits are undefined."""


class NullSink(TraceSink):
    """The zero-cost default: accepts nothing, stores nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(None)

    def wants(self, category: str) -> bool:
        return False

    def emit(self, event: Mapping[str, object]) -> None:  # pragma: no cover
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(
        self, capacity: int = 4096, categories: Optional[frozenset] = None
    ) -> None:
        super().__init__(categories)
        if capacity < 1:
            raise ConfigurationError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: Mapping[str, object]) -> None:
        self._buffer.append(dict(event))
        self.emitted += 1
        PROFILE.record_event()

    @property
    def events(self) -> list:
        """The buffered events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink(TraceSink):
    """Streams events to ``path``, one compact JSON object per line.

    The file descriptor is opened lazily and per-process: after a
    ``fork`` each worker reopens the file itself, and lines are written
    with one ``os.write`` to an ``O_APPEND`` descriptor, so a shared
    trace file collects whole lines from every worker.

    **Tracing must never take the run down.** A write that fails with an
    environmental ``OSError`` (disk full, a closed pipe, a yanked
    volume) *degrades* the sink instead of propagating: one warning is
    printed to stderr, a ``sink_degraded`` trace event is appended
    best-effort (and kept on :attr:`degraded_event` for in-process
    consumers), and from then on the sink behaves like a
    :class:`NullSink` -- ``wants`` answers ``False`` and ``emit`` is a
    no-op. Simulation results are bit-identical either way, because
    tracing is observation only.
    """

    def __init__(
        self, path: Union[str, Path], categories: Optional[frozenset] = None
    ) -> None:
        super().__init__(categories)
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._fd_pid: Optional[int] = None
        #: True once a failed write flipped the sink to null behavior.
        self.degraded = False
        #: The ``sink_degraded`` event recorded at the flip (None before).
        self.degraded_event: Optional[dict] = None

    def wants(self, category: str) -> bool:
        if self.degraded:
            return False
        return super().wants(category)

    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._fd_pid != pid:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._fd_pid = pid
        return self._fd

    def _degrade(self, error: OSError) -> None:
        """Flip to null behavior after an unwritable-file error."""
        self.degraded = True
        self.degraded_event = sink_degraded_event(
            str(self.path), f"{type(error).__name__}: {error}"
        )
        print(
            f"[trace] warning: trace sink {self.path} is unwritable "
            f"({error}); degrading to a null sink -- simulation results "
            "are unaffected",
            file=sys.stderr,
        )
        # Best-effort: the failure may be transient (EPIPE on one fd,
        # a rotated volume); if even this line cannot land, the event
        # still lives on ``degraded_event``.
        try:
            line = json.dumps(
                self.degraded_event, separators=(",", ":"), allow_nan=False
            )
            os.write(self._descriptor(), line.encode("utf-8") + b"\n")
        except OSError:
            pass

    def emit(self, event: Mapping[str, object]) -> None:
        if self.degraded:
            return
        line = json.dumps(event, separators=(",", ":"), allow_nan=False)
        try:
            os.write(self._descriptor(), line.encode("utf-8") + b"\n")
        except OSError as error:
            self._degrade(error)
            return
        self.emitted += 1
        PROFILE.record_event()

    def close(self) -> None:
        if self._fd is not None and self._fd_pid == os.getpid():
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - EIO at close
                pass
        self._fd = None
        self._fd_pid = None
