"""Structured run telemetry: tracing + profiling for both substrates.

The paper's mechanism is driven entirely by periodically sampled
hardware counters, yet without this package those internals were only
visible post-hoc (``FairnessController.history``, the Figure-5
recorder). Telemetry makes a run observable while preserving results
exactly:

* **Events** (:mod:`.events`) -- typed, schema-validated JSONL lines in
  three categories: ``controller`` (Delta-boundary counter samples,
  IPC_ST estimates, quotas, deficits), ``switch`` (thread switches with
  cause, segment boundaries, idle stalls, from either substrate), and
  ``runner`` (grid task start/stop, cache hits/misses, worker ids).
* **Sinks** (:mod:`.sinks`) -- ``NullSink`` (zero-cost default),
  ``RingBufferSink`` (in-memory flight recorder), ``JsonlSink``
  (fork-safe streaming file).
* **Profiling** (:mod:`.profile`) -- per-process counters merged across
  multiprocessing workers into a per-run manifest (config hash, seed,
  events/sec, simulated-cycles/sec, peak RSS).
* **Summaries** (:mod:`.summary`) -- ``repro trace-summary PATH``
  renders switch-cause histograms and fairness-convergence timelines
  from a trace file.

Tracing is *observation only*: with any sink installed, simulation
results are bit-identical to an untraced run (pinned by tests and the
CI grid-smoke job). The active sink is ambient -- installed once by the
CLI's ``--trace`` flag via :func:`tracing` and picked up by every
engine, controller, and grid worker (workers inherit it at ``fork``) --
mirroring how :class:`~repro.experiments.runner.ExecutionSettings`
travel.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry import events
from repro.telemetry.events import (
    CATEGORIES,
    CONTROLLER,
    RUNNER,
    SWITCH,
    parse_categories,
    validate_event,
    validate_trace_file,
)
from repro.telemetry.profile import (
    PROFILE,
    RunManifest,
    WorkerProfile,
    build_manifest,
    write_manifest,
)
from repro.telemetry.sinks import JsonlSink, NullSink, RingBufferSink, TraceSink

__all__ = [
    "CATEGORIES",
    "CONTROLLER",
    "SWITCH",
    "RUNNER",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "PROFILE",
    "WorkerProfile",
    "RunManifest",
    "build_manifest",
    "write_manifest",
    "parse_categories",
    "validate_event",
    "validate_trace_file",
    "events",
    "current_sink",
    "set_sink",
    "tracing",
    "resolve_sink",
]

_NULL = NullSink()
_SINK: TraceSink = _NULL


def current_sink() -> TraceSink:
    """The ambient trace sink (a :class:`NullSink` by default)."""
    return _SINK


def set_sink(sink: Optional[TraceSink]) -> TraceSink:
    """Install a new ambient sink (None = disable); returns the old one."""
    global _SINK
    previous = _SINK
    _SINK = sink if sink is not None else _NULL
    return previous


@contextmanager
def tracing(sink: Optional[TraceSink]) -> Iterator[TraceSink]:
    """Scope an ambient sink to a ``with`` block."""
    previous = set_sink(sink)
    try:
        yield current_sink()
    finally:
        set_sink(previous)


def resolve_sink(sink: Optional[TraceSink]) -> Optional[TraceSink]:
    """What instrumented components store at construction time.

    An explicit sink wins, otherwise the ambient one; a disabled sink
    resolves to None so emission sites guard with a single ``is not
    None`` test and a category check.
    """
    resolved = sink if sink is not None else _SINK
    return resolved if resolved.enabled else None
