"""Fairness and combined throughput/fairness metrics (paper Sections 2.2, 6).

The paper's fairness metric (Eq. 4) is the minimum ratio between the
speedups of any two threads, where the speedup of thread *j* is
``IPC_SOE_j / IPC_ST_j``. The metric lies in ``[0, 1]``: 1 is a
perfectly fair system (all threads slowed down equally), 0 means some
thread is completely starved.

For the Section 6 discussion we also implement the two single-number
alternatives from related work:

* *weighted speedup* (Snavely et al.) -- the sum of the speedups;
* *harmonic-mean fairness* (Luo et al.) -- ``N / sum(1 / speedup_j)``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "speedups",
    "fairness",
    "fairness_from_ipcs",
    "speedup_ratio_bound",
    "weighted_fairness",
    "weighted_speedup",
    "harmonic_mean_fairness",
]


def speedups(ipc_soe: Sequence[float], ipc_st: Sequence[float]) -> list[float]:
    """Eq. 3: per-thread speedups ``IPC_SOE_j / IPC_ST_j``.

    How each thread fares under SOE relative to owning the machine.
    ``ipc_st`` values must be positive (a thread that cannot make
    progress alone has no meaningful speedup); ``ipc_soe`` values may be
    zero (a starved thread).
    """
    if len(ipc_soe) != len(ipc_st):
        raise ConfigurationError(
            f"mismatched lengths: {len(ipc_soe)} SOE IPCs vs {len(ipc_st)} ST IPCs"
        )
    if not ipc_soe:
        raise ConfigurationError("at least one thread is required")
    for value in ipc_st:
        if not (value > 0 and math.isfinite(value)):
            raise ConfigurationError(f"single-thread IPC must be positive, got {value}")
    for value in ipc_soe:
        if value < 0 or not math.isfinite(value):
            raise ConfigurationError(f"SOE IPC must be non-negative, got {value}")
    return [soe / st for soe, st in zip(ipc_soe, ipc_st)]


def fairness(thread_speedups: Sequence[float]) -> float:
    """Eq. 4: the minimum ratio between any two threads' speedups.

    Equals ``min(speedups) / max(speedups)`` and lies in ``[0, 1]``.
    A single-thread "system" is trivially fair (returns 1.0).
    """
    if not thread_speedups:
        raise ConfigurationError("at least one speedup is required")
    lo = min(thread_speedups)
    hi = max(thread_speedups)
    if lo < 0:
        raise ConfigurationError("speedups must be non-negative")
    if hi == 0:
        # Every thread is starved; the system is degenerate but, per the
        # metric's definition, not *unfair* among equals.
        return 1.0
    return lo / hi


def fairness_from_ipcs(ipc_soe: Sequence[float], ipc_st: Sequence[float]) -> float:
    """Eq. 4 computed directly from the two IPC vectors."""
    return fairness(speedups(ipc_soe, ipc_st))


def speedup_ratio_bound(fairness_target: float) -> float:
    """Eq. 8: the worst-case speedup ratio a target ``F`` admits, ``1/F``.

    Because quotas are capped at each thread's IPM and misses still
    force switches, enforcement can only narrow speedup ratios: with a
    target ``F`` the achieved pairwise ratio ``speedup_j / speedup_k``
    stays within ``[F, 1/F]``. A target of 0 disables enforcement and
    admits unbounded ratios (returns ``inf``).
    """
    if not 0.0 <= fairness_target <= 1.0:
        raise ConfigurationError(
            f"fairness target must be in [0, 1], got {fairness_target}"
        )
    if fairness_target <= 0.0:
        return math.inf
    return 1.0 / fairness_target


def weighted_fairness(
    thread_speedups: Sequence[float], weights: Sequence[float]
) -> float:
    """Eq. 4 on priority-normalized speedups.

    With per-thread weights ``w_j``, a system is considered fair when
    speedups are *proportional to the weights* (a weight-2 thread is
    entitled to twice the speedup); the metric is therefore Eq. 4
    applied to ``speedup_j / w_j``. Equal weights recover
    :func:`fairness`.
    """
    if len(weights) != len(thread_speedups):
        raise ConfigurationError(
            f"expected {len(thread_speedups)} weights, got {len(weights)}"
        )
    if any(w <= 0 for w in weights):
        raise ConfigurationError("weights must be positive")
    return fairness([s / w for s, w in zip(thread_speedups, weights)])


def weighted_speedup(thread_speedups: Sequence[float]) -> float:
    """Snavely et al.'s weighted speedup: the sum of the speedups."""
    if not thread_speedups:
        raise ConfigurationError("at least one speedup is required")
    return float(sum(thread_speedups))


def harmonic_mean_fairness(thread_speedups: Sequence[float]) -> float:
    """Luo et al.'s metric: the harmonic mean of the speedups.

    Returns 0.0 when any thread is fully starved (speedup 0), matching
    the harmonic mean's limit.
    """
    if not thread_speedups:
        raise ConfigurationError("at least one speedup is required")
    if any(s < 0 for s in thread_speedups):
        raise ConfigurationError("speedups must be non-negative")
    if any(s == 0 for s in thread_speedups):
        return 0.0
    return len(thread_speedups) / sum(1.0 / s for s in thread_speedups)
