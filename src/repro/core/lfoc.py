"""LFOC-style cluster-then-enforce fairness as a switch policy.

LFOC/LFOC+ (Garcia-Garcia et al.) first *classify* threads by cache
sensitivity -- cache-hungry vs light -- and then apply fairness
enforcement per cluster rather than globally. The SOE analogue uses the
mechanism's own counters: a thread's estimated IPM (instructions per
switch-causing miss, Eq. 11) is the natural hunger signal. A low IPM
means the thread misses often (cache-hungry); a high IPM means it
rarely yields on its own (light).

:class:`LfocClusterPolicy` samples the hardware counters every
``Delta`` cycles like the paper's controller, splits threads at an IPM
threshold into a *hungry* and a *light* cluster, and applies the Eq. 7
quota computation per cluster role:

* **light** threads -- the ones that rarely yield and can therefore
  starve everyone else -- get the globally scaled quota (the scale
  constant computed over *all* threads), which is what protects the
  hungry cluster from them;
* **hungry** threads get cluster-local quotas (the scale constant
  computed over the hungry subset only), i.e. fairness is maintained
  *within* the cluster; a thread alone in the hungry cluster runs
  unenforced -- it already yields on every miss, and forcing it out
  earlier can only hurt.

This is the clustering idea of Garcia-Garcia et al. transplanted onto
the paper's quota machinery: classify first, then enforce with
cluster-appropriate aggressiveness.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.counters import HardwareCounters
from repro.core.deficit import DeficitCounter
from repro.core.estimator import IpcStEstimator, ThreadEstimate
from repro.core.policy import SwitchPolicy
from repro.core.quota import quotas_from_estimates
from repro.errors import ConfigurationError

__all__ = ["LfocClusterPolicy"]

#: Default hungry/light IPM split. Sits between the evaluation
#: workloads' miss-heavy profiles (IPM of a few hundred to a few
#: thousand) and the compute-bound ones (tens of thousands).
DEFAULT_IPM_THRESHOLD = 5_000.0


class LfocClusterPolicy(SwitchPolicy):
    """Cluster threads by IPM profile, enforce quotas per cluster."""

    def __init__(
        self,
        num_threads: int,
        fairness_target: float,
        miss_lat: float = 300.0,
        sample_period: float = 250_000.0,
        ipm_threshold: float = DEFAULT_IPM_THRESHOLD,
        min_quota: float = 1.0,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        if not 0.0 <= fairness_target <= 1.0:
            raise ConfigurationError(
                f"fairness target must be in [0, 1], got {fairness_target}"
            )
        if miss_lat < 0:
            raise ConfigurationError("miss_lat must be non-negative")
        if sample_period <= 0:
            raise ConfigurationError("sample_period must be positive")
        if not (ipm_threshold > 0):
            raise ConfigurationError("ipm_threshold must be positive")
        self._fairness_target = float(fairness_target)
        self._miss_lat = float(miss_lat)
        self._sample_period = float(sample_period)
        self._ipm_threshold = float(ipm_threshold)
        self._min_quota = float(min_quota)
        self._counters = [HardwareCounters() for _ in range(num_threads)]
        self._deficits = [DeficitCounter() for _ in range(num_threads)]
        self._estimator = IpcStEstimator(num_threads, miss_lat)
        self._quotas = [math.inf] * num_threads
        self._next_boundary = self._sample_period
        self._clusters: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    # ------------------------------------------------------------------
    # Introspection (used by tests and experiments)
    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        return len(self._counters)

    @property
    def quotas(self) -> list[float]:
        """The per-thread quotas currently in force."""
        return list(self._quotas)

    @property
    def clusters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(hungry, light)`` thread ids from the last ``Delta`` boundary."""
        return self._clusters

    def _cluster(
        self, estimates: list[ThreadEstimate]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        hungry: list[int] = []
        light: list[int] = []
        for tid, estimate in enumerate(estimates):
            if estimate.ipm <= self._ipm_threshold:
                hungry.append(tid)
            else:
                light.append(tid)
        return tuple(hungry), tuple(light)

    # ------------------------------------------------------------------
    # SwitchPolicy interface
    # ------------------------------------------------------------------
    def on_run_start(self, thread_id: int, now: float) -> None:
        self._deficits[thread_id].grant(self._quotas[thread_id])

    def instruction_budget(self, thread_id: int) -> float:
        return self._deficits[thread_id].remaining

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        self._counters[thread_id].retire(instructions, cycles)
        self._deficits[thread_id].consume(instructions)

    def on_miss(
        self, thread_id: int, now: float, latency: Optional[float] = None
    ) -> None:
        self._counters[thread_id].record_miss()

    def next_boundary(self, now: float) -> float:
        return self._next_boundary

    def on_boundary(self, now: float) -> None:
        """Re-cluster and recompute cluster-role quotas at a boundary."""
        samples = [c.sample_and_reset() for c in self._counters]
        estimates = self._estimator.update_all(samples)
        hungry, light = self._cluster(estimates)
        self._clusters = (hungry, light)
        quotas = [math.inf] * self.num_threads
        if light:
            # Light threads are throttled on the global scale: their
            # quota is what keeps them from starving the hungry cluster.
            global_quotas = quotas_from_estimates(
                estimates,
                self._fairness_target,
                self._miss_lat,
                self._min_quota,
            )
            for tid in light:
                quotas[tid] = global_quotas[tid]
        if len(hungry) >= 2:
            # Hungry threads only owe fairness to each other; a lone
            # hungry thread runs unenforced.
            cluster_quotas = quotas_from_estimates(
                [estimates[tid] for tid in hungry],
                self._fairness_target,
                self._miss_lat,
                self._min_quota,
            )
            for tid, quota in zip(hungry, cluster_quotas):
                quotas[tid] = quota
        self._quotas = quotas
        while self._next_boundary <= now:
            self._next_boundary += self._sample_period
