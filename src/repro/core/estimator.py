"""Runtime estimation of single-thread performance (paper Sections 2, 3.1).

While threads run together in SOE mode, the mechanism estimates what
each thread's IPC *would have been* had it run alone (``IPC_ST_j``),
using the per-window hardware counters and Eq. 13. This module adds the
robustness details the simulators need on top of the raw equation:

* an empty window (the thread never ran -- possible only transiently,
  since the maximum-cycles quota guarantees every thread runs each
  ``Delta``) falls back to the previous estimate;
* optional exponential smoothing across windows (an extension knob; the
  paper uses the raw per-window estimate, which is the default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.counters import CounterSample
from repro.errors import ConfigurationError

__all__ = ["ThreadEstimate", "IpcStEstimator"]


@dataclass(frozen=True)
class ThreadEstimate:
    """One thread's derived characteristics for a sampling window."""

    ipm: float
    cpm: float
    ipc_st: float
    #: True when this estimate was carried over from a previous window
    #: because the thread retired nothing in the current one.
    carried_over: bool = False
    #: The event latency Eq. 13 was evaluated with (None = the
    #: estimator's configured constant). Set when the controller runs
    #: with runtime latency measurement (Section 6).
    miss_lat: Optional[float] = None


class IpcStEstimator:
    """Per-thread single-thread-IPC estimator fed by counter samples."""

    def __init__(
        self,
        num_threads: int,
        miss_lat: float,
        smoothing: float = 0.0,
    ) -> None:
        """
        Parameters
        ----------
        num_threads:
            Number of hardware thread contexts.
        miss_lat:
            Average memory access latency in cycles (Eq. 13's constant).
        smoothing:
            Exponential smoothing factor in ``[0, 1)`` applied across
            windows: 0 (the paper's behaviour) uses each window's raw
            estimate; larger values weight history more.
        """
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        if miss_lat < 0:
            raise ConfigurationError("miss_lat must be non-negative")
        if not 0.0 <= smoothing < 1.0:
            raise ConfigurationError("smoothing must be in [0, 1)")
        self._miss_lat = float(miss_lat)
        self._smoothing = float(smoothing)
        self._estimates: list[Optional[ThreadEstimate]] = [None] * num_threads

    @property
    def num_threads(self) -> int:
        return len(self._estimates)

    def update(
        self,
        thread_id: int,
        sample: CounterSample,
        miss_lat: Optional[float] = None,
    ) -> ThreadEstimate:
        """Fold one window's sample into the thread's estimate.

        ``miss_lat`` overrides the configured constant for this window
        (used with runtime latency measurement, Section 6).
        """
        previous = self._estimates[thread_id]
        latency = self._miss_lat if miss_lat is None else miss_lat
        if sample.is_empty:
            if previous is not None:
                estimate = ThreadEstimate(
                    previous.ipm,
                    previous.cpm,
                    previous.ipc_st,
                    carried_over=True,
                    miss_lat=previous.miss_lat,
                )
            else:
                # No information at all yet: report a null estimate; the
                # quota computation treats it as "do not force switches".
                estimate = ThreadEstimate(0.0, 0.0, 0.0, carried_over=True)
        else:
            ipc_st = sample.estimated_single_thread_ipc(latency)
            if self._smoothing and previous is not None and not previous.carried_over:
                alpha = self._smoothing
                estimate = ThreadEstimate(
                    alpha * previous.ipm + (1 - alpha) * sample.ipm,
                    alpha * previous.cpm + (1 - alpha) * sample.cpm,
                    alpha * previous.ipc_st + (1 - alpha) * ipc_st,
                    miss_lat=miss_lat,
                )
            else:
                estimate = ThreadEstimate(
                    sample.ipm, sample.cpm, ipc_st, miss_lat=miss_lat
                )
        self._estimates[thread_id] = estimate
        return estimate

    def update_all(
        self,
        samples: Sequence[CounterSample],
        miss_lats: Optional[Sequence[float]] = None,
    ) -> list[ThreadEstimate]:
        """Fold one window's samples for every thread, in thread order."""
        if len(samples) != self.num_threads:
            raise ConfigurationError(
                f"expected {self.num_threads} samples, got {len(samples)}"
            )
        if miss_lats is not None and len(miss_lats) != self.num_threads:
            raise ConfigurationError(
                f"expected {self.num_threads} latencies, got {len(miss_lats)}"
            )
        return [
            self.update(
                tid, sample, None if miss_lats is None else miss_lats[tid]
            )
            for tid, sample in enumerate(samples)
        ]

    def estimate(self, thread_id: int) -> Optional[ThreadEstimate]:
        """The latest estimate for a thread, or None before any sample."""
        return self._estimates[thread_id]

    @property
    def estimates(self) -> list[Optional[ThreadEstimate]]:
        """Latest estimates for all threads (None before the first sample)."""
        return list(self._estimates)
