"""Runtime measurement of switch-event latency (paper Section 6).

The base mechanism assumes a constant, known miss latency (300 cycles).
Section 6 notes that other switch events -- L1 misses that may hit the
L2, explicit ``pause`` hints -- have *variable* latencies whose average
is hard to predict, and proposes measuring them: "a hardware counter
could count the total number of cycles used for [the event's] handling.
On every Delta cycles ... the average latency should also be
calculated, using the hardware counter divided by the number of
misses."

:class:`MissLatencyMonitor` is that counter pair, one per thread: the
simulators report each switch-event's actual latency, and the fairness
controller asks for the measured per-thread average at every ``Delta``
boundary, falling back to the configured constant while a thread has no
observations.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["MissLatencyMonitor"]


class MissLatencyMonitor:
    """Per-thread average switch-event latency over sampling windows."""

    def __init__(self, num_threads: int, default_latency: float) -> None:
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        if default_latency < 0:
            raise ConfigurationError("default latency must be non-negative")
        self.default_latency = float(default_latency)
        self._total = [0.0] * num_threads
        self._events = [0] * num_threads
        #: last window's measured averages (None until first observation)
        self._measured: list[Optional[float]] = [None] * num_threads

    @property
    def num_threads(self) -> int:
        return len(self._total)

    def record(self, thread_id: int, latency: float) -> None:
        """Account one switch event's observed latency."""
        if latency < 0:
            raise ConfigurationError("latency cannot be negative")
        self._total[thread_id] += latency
        self._events[thread_id] += 1

    def sample_and_reset(self) -> list[float]:
        """Close the window: per-thread average latency.

        A thread with no events this window keeps its previous measured
        value; a thread that has never missed reports the configured
        default.
        """
        for tid in range(self.num_threads):
            if self._events[tid] > 0:
                self._measured[tid] = self._total[tid] / self._events[tid]
            self._total[tid] = 0.0
            self._events[tid] = 0
        return self.latencies()

    def latency(self, thread_id: int) -> float:
        """Current best estimate of the thread's event latency."""
        measured = self._measured[thread_id]
        return self.default_latency if measured is None else measured

    def latencies(self) -> list[float]:
        return [self.latency(tid) for tid in range(self.num_threads)]
