"""Deficit counters (paper Section 3.2).

Simply forcing a switch every ``IPSw_j`` instructions would undershoot
the intended *average* instructions per switch, because threads are also
switched out by cache misses before their quota is used up. The paper
borrows the Deficit-Round-Robin idea from network scheduling: the unused
part of a quota (the *deficit*) is carried over and added to the next
grant, so the long-run average instructions per switch converges to
``IPSw_j``.

Protocol (as in the paper):

* the counter starts at 0;
* on switch-in it is **incremented by** ``IPSw_j`` (not reset to it);
* each retired instruction decrements it;
* the thread is switched out when it reaches 0 -- or earlier, on a miss,
  in which case the remainder is the carried-over deficit.

An optional cap bounds the accumulated deficit; the paper uses no cap
(``cap=None``), and the ablation experiments explore the knob.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["DeficitCounter"]


class DeficitCounter:
    """One thread's deficit counter."""

    def __init__(self, cap: Optional[float] = None) -> None:
        if cap is not None and cap <= 0:
            raise ConfigurationError("deficit cap must be positive or None")
        self._cap = cap
        self._value = 0.0

    @property
    def remaining(self) -> float:
        """Instructions the thread may still retire before a forced switch."""
        return self._value

    @property
    def exhausted(self) -> bool:
        """True when the quota has been fully consumed."""
        return self._value <= 0.0

    def grant(self, quota: float) -> None:
        """Add the current window's quota at switch-in.

        An infinite quota means "no forced switches this window"; any
        leftover from such a window is meaningless, so a later finite
        grant starts from zero rather than from infinity.
        """
        if quota < 0:
            raise ConfigurationError("quota must be non-negative")
        if math.isinf(quota):
            self._value = math.inf
            return
        if math.isinf(self._value):
            self._value = 0.0
        self._value += quota
        if self._cap is not None:
            self._value = min(self._value, self._cap)

    def consume(self, instructions: float) -> None:
        """Account retired instructions against the remaining quota.

        The value is clamped at 0: a slight overshoot (the simulators
        retire in fractional chunks) never turns into extra credit.
        """
        if instructions < 0:
            raise ConfigurationError("cannot consume negative instructions")
        if math.isinf(self._value):
            return
        self._value = max(0.0, self._value - instructions)

    def reset(self) -> None:
        """Clear the counter (used when a thread context is recycled)."""
        self._value = 0.0
