"""ICOUNT-style dispatch priority as a switch policy.

Tullsen et al.'s ICOUNT fetch policy (SMT, ISCA 1996) prioritizes the
thread with the fewest instructions in the front of the pipeline. SOE
cores run one thread at a time, so there is no shared front-end to
partition; the analogue at the switch-arbitration level is *dispatch*
priority: when several threads are ready, dispatch the one that has
retired the fewest instructions so far.

This makes ICOUNT a pure *selection* policy: it never forces a switch
(threads still yield only on misses and the engine's maximum-cycles
quota), it only overrides the substrate's least-recently-dispatched
round robin through :meth:`~repro.core.policy.SwitchPolicy.select_thread`.
Compared to the paper's quota mechanism it equalizes retired
*instruction counts* rather than *slowdowns*, which is exactly the gap
the frontier experiment measures.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policy import SwitchPolicy
from repro.errors import ConfigurationError

__all__ = ["IcountPolicy"]


class IcountPolicy(SwitchPolicy):
    """Dispatch the ready thread with the fewest retired instructions.

    Ties break toward the lower thread id, which keeps runs
    deterministic and reproducible across substrates.
    """

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        self._retired = [0.0] * num_threads

    @property
    def retired(self) -> list[float]:
        """Cumulative instructions retired per thread (for inspection)."""
        return list(self._retired)

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        self._retired[thread_id] += instructions

    def select_thread(self, ready: Sequence[int], now: float) -> Optional[int]:
        return min(ready, key=lambda tid: (self._retired[tid], tid))
