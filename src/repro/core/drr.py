"""NoC-style deficit-round-robin arbitration as a switch policy.

Deficit Round Robin (Shreedhar & Varghese, SIGCOMM 1995) serves flows
in rounds: each flow's deficit counter is topped up by a fixed
*quantum* per round and drained by the bytes it sends; unused credit
carries over. Fair packet scheduling work for networks-on-chip (Wang
et al.) applies the same discipline to switch ports, which maps
directly onto SOE switch arbitration: a dispatch is a round, retired
instructions are the bytes, and the grant size is the quantum of
Eq. 2 in Shreedhar & Varghese (1995) with every thread weighted
equally.

The contrast with the paper's mechanism is deliberate: DRR grants every
thread the *same* fixed quantum, whereas Eq. 9 sizes each quota from
the thread's estimated single-thread IPC. DRR therefore equalizes
retired instructions per unit of arbitration, not slowdowns -- another
point on the fairness/throughput frontier.
"""

from __future__ import annotations

from typing import Optional

from repro.core.deficit import DeficitCounter
from repro.core.policy import SwitchPolicy
from repro.errors import ConfigurationError

__all__ = ["DrrArbiterPolicy"]

#: Default per-dispatch instruction quantum. Of the order of the
#: inter-miss instruction counts of the evaluation workloads, so the
#: arbiter neither thrashes (tiny quantum) nor degenerates into
#: miss-only switching (huge quantum).
DEFAULT_QUANTUM = 5_000.0


class DrrArbiterPolicy(SwitchPolicy):
    """Deficit round robin over switch grants.

    Every dispatch grants the thread ``quantum`` instructions on top of
    any carried-over deficit; the thread is forced out when the credit
    is spent. Miss-induced early switches leave the remainder as
    carried-over credit, exactly like the paper's deficit counters --
    the difference is solely the fixed, estimate-free grant size.
    """

    def __init__(
        self,
        num_threads: int,
        quantum: float = DEFAULT_QUANTUM,
        cap: Optional[float] = None,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        if not (quantum > 0):
            raise ConfigurationError("quantum must be positive")
        self._quantum = float(quantum)
        self._deficits = [DeficitCounter(cap) for _ in range(num_threads)]

    @property
    def quantum(self) -> float:
        return self._quantum

    def deficit_remaining(self, thread_id: int) -> float:
        return self._deficits[thread_id].remaining

    def on_run_start(self, thread_id: int, now: float) -> None:
        self._deficits[thread_id].grant(self._quantum)

    def instruction_budget(self, thread_id: int) -> float:
        return self._deficits[thread_id].remaining

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        self._deficits[thread_id].consume(instructions)
