"""Computation of the per-thread instruction quota ``IPSw_j`` (Eq. 9).

Every ``Delta`` cycles, the fairness controller feeds the latest
per-thread estimates to :func:`quotas_from_estimates`, which applies
Eq. 9:

    ``IPSw_j = min(IPM_j, IPC_ST_j * (CPM_min + miss_lat) / F)``

and returns the quota each thread may retire before a forced switch.
Threads with no usable estimate (a starved thread that has not produced
a sample yet) get an infinite quota -- forcing them out early is the one
thing the mechanism must never do to a thread it knows nothing about.

Two generalizations beyond the paper's base mechanism, both direct
consequences of the Eq. 7 derivation:

* **Per-thread event latencies** (Section 6): with measured latencies
  ``L_j`` the scaling constant becomes ``min_j (CPM_j + L_j)``, which
  reduces to the paper's ``CPM_min + miss_lat`` for a uniform latency.
  Any common constant preserves the fairness guarantee; this choice
  keeps the fastest-missing thread's quota at its IPM, i.e. maximally
  permissive.
* **Weights** (prioritized fairness): ``IPSw_j ∝ w_j * IPC_ST_j``
  targets speedup *ratios* of ``w_j : w_k`` instead of 1 : 1 -- the
  fairness guarantee then applies to the weighted speedups
  ``speedup_j / w_j``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.estimator import ThreadEstimate
from repro.errors import ConfigurationError

__all__ = ["quotas_from_estimates"]


def quotas_from_estimates(
    estimates: Sequence[ThreadEstimate],
    fairness_target: float,
    miss_lat: float,
    min_quota: float = 1.0,
    weights: Optional[Sequence[float]] = None,
) -> list[float]:
    """Eq. 7: quotas ``IPSw_j ∝ w_j · IPC_ST_j`` from a window's estimates.

    The speedup-ratio derivation (Eq. 7) shows that *any* common scaling
    constant ``C`` in ``IPSw_j = IPC_ST_j · C / F`` equalizes speedups;
    this function implements that general form — per-thread measured
    latencies and priority weights included — and reduces exactly to the
    paper's Eq. 9 instantiation (``C = CPM_min + miss_lat``, equal
    weights; see :func:`repro.core.model.compute_ipsw`).

    Parameters
    ----------
    estimates:
        Latest :class:`~repro.core.estimator.ThreadEstimate` per thread.
        An estimate's ``miss_lat`` field, when set, overrides the
        constant for that thread (measured event latency).
    fairness_target:
        The ``F`` parameter in ``[0, 1]``; 0 disables forced switches.
    miss_lat:
        Default memory access latency in cycles.
    min_quota:
        Lower bound on any finite quota. A quota below one instruction
        would switch a thread out before it retires anything, which can
        never help fairness; the paper's hardware would round up anyway.
    weights:
        Optional per-thread priority weights (all positive). ``None``
        means equal weights -- the paper's mechanism.

    Returns
    -------
    list of float
        One quota per thread; ``math.inf`` means "switch only on misses
        or the maximum-cycles quota".
    """
    if not estimates:
        raise ConfigurationError("at least one estimate is required")
    if not 0.0 <= fairness_target <= 1.0:
        raise ConfigurationError(
            f"fairness target must be in [0, 1], got {fairness_target}"
        )
    if min_quota <= 0:
        raise ConfigurationError("min_quota must be positive")
    if weights is not None:
        if len(weights) != len(estimates):
            raise ConfigurationError(
                f"expected {len(estimates)} weights, got {len(weights)}"
            )
        if any(w <= 0 for w in weights):
            raise ConfigurationError("weights must be positive")
    # repro-lint: disable=RL004 - F=0 is an exact, validated sentinel input
    if fairness_target == 0.0:
        return [math.inf] * len(estimates)

    def latency_of(estimate: ThreadEstimate) -> float:
        return miss_lat if estimate.miss_lat is None else estimate.miss_lat

    usable = [
        (index, e) for index, e in enumerate(estimates) if e.ipc_st > 0
    ]
    if not usable:
        return [math.inf] * len(estimates)
    # The scaling constant. Note (CPM_j + L_j) = IPM_j / IPC_ST_j, so
    # the unweighted minimum is the paper's CPM_min + miss_lat and it
    # pins the fastest-missing thread's quota at its IPM when F = 1.
    # Dividing by the weight keeps that pinning correct when the
    # IPM-constrained thread is the *up-weighted* one: the other
    # threads' quotas shrink to preserve the target ratio instead of
    # the constrained quota being silently clipped.
    def weight_of(index: int) -> float:
        return 1.0 if weights is None else weights[index]

    scale = min(
        (e.cpm + latency_of(e)) / weight_of(index) for index, e in usable
    )

    quotas = []
    for index, estimate in enumerate(estimates):
        if estimate.ipc_st <= 0:
            quotas.append(math.inf)
            continue
        quota = weight_of(index) * estimate.ipc_st * scale / fairness_target
        quota = min(estimate.ipm, quota)
        quotas.append(max(quota, min_quota))
    return quotas
