"""The paper's fairness-enforcement mechanism as a switch policy.

:class:`FairnessController` ties the pieces together exactly as
Section 3 describes:

1. three hardware counters per thread (:mod:`repro.core.counters`)
   accumulate ``Instrs``, ``Cycles`` and switch-causing ``Misses``;
2. every ``Delta`` cycles (the paper uses 250,000) the counters are
   sampled and each thread's single-thread IPC is estimated via Eq. 13
   (:mod:`repro.core.estimator`);
3. Eq. 9 converts the estimates into per-thread instruction quotas
   ``IPSw_j`` (:mod:`repro.core.quota`);
4. deficit counters (:mod:`repro.core.deficit`) enforce the quotas as a
   long-run *average* instructions-per-switch despite miss-induced
   early switches.

The controller is substrate-agnostic: it sees the machine only through
the :class:`~repro.core.policy.SwitchPolicy` callbacks, so the same
class drives both the segment-level engine and the detailed
out-of-order core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.counters import HardwareCounters
from repro.core.deficit import DeficitCounter
from repro.core.estimator import IpcStEstimator, ThreadEstimate
from repro.core.latency import MissLatencyMonitor
from repro.core.policy import SwitchPolicy
from repro.core.quota import quotas_from_estimates
from repro.errors import ConfigurationError
from repro.telemetry import CONTROLLER as _TRACE_CONTROLLER
from repro.telemetry import resolve_sink
from repro.telemetry.events import controller_sample
from repro.telemetry.sinks import TraceSink

__all__ = ["FairnessParams", "SamplePoint", "FairnessController"]


@dataclass(frozen=True)
class FairnessParams:
    """Configuration of the fairness-enforcement mechanism.

    Defaults match the paper's evaluation: ``Delta = 250,000`` cycles,
    ``miss_lat = 300`` cycles, no deficit cap, no estimate smoothing.
    """

    fairness_target: float
    miss_lat: float = 300.0
    sample_period: float = 250_000.0
    min_quota: float = 1.0
    deficit_cap: Optional[float] = None
    smoothing: float = 0.0
    #: Section 6 extension: derive each thread's event latency from the
    #: latencies the substrate reports instead of assuming ``miss_lat``.
    #: Required for correct enforcement with variable-latency switch
    #: events (L1 misses, pause hints).
    measure_miss_latency: bool = False
    #: Prioritized fairness: per-thread weights; the mechanism targets
    #: speedup ratios proportional to the weights. None = equal shares.
    weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fairness_target <= 1.0:
            raise ConfigurationError(
                f"fairness target must be in [0, 1], got {self.fairness_target}"
            )
        if self.miss_lat < 0:
            raise ConfigurationError("miss_lat must be non-negative")
        if self.sample_period <= 0:
            raise ConfigurationError("sample_period must be positive")
        if self.weights is not None and any(w <= 0 for w in self.weights):
            raise ConfigurationError("weights must be positive")


@dataclass(frozen=True)
class SamplePoint:
    """One ``Delta`` boundary's outputs, kept for analysis/plotting."""

    time: float
    estimates: tuple[ThreadEstimate, ...]
    quotas: tuple[float, ...]
    #: instructions each thread retired during the window just closed
    window_instructions: tuple[float, ...] = field(default=())


class FairnessController(SwitchPolicy):
    """Runtime fairness enforcement (paper Sections 2.3, 3)."""

    def __init__(
        self,
        num_threads: int,
        params: FairnessParams,
        *,
        sink: Optional[TraceSink] = None,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError("need at least one thread")
        if params.weights is not None and len(params.weights) != num_threads:
            raise ConfigurationError(
                f"expected {num_threads} weights, got {len(params.weights)}"
            )
        self.params = params
        self._counters = [HardwareCounters() for _ in range(num_threads)]
        self._deficits = [
            DeficitCounter(params.deficit_cap) for _ in range(num_threads)
        ]
        self._estimator = IpcStEstimator(num_threads, params.miss_lat, params.smoothing)
        self._latency_monitor: Optional[MissLatencyMonitor] = None
        if params.measure_miss_latency:
            self._latency_monitor = MissLatencyMonitor(num_threads, params.miss_lat)
        self._quotas = [math.inf] * num_threads
        self._next_boundary = params.sample_period
        self._history: list[SamplePoint] = []
        # Tracing is observation only: the resolved sink (explicit, or
        # the ambient one; None when tracing is off) never feeds back
        # into estimates, quotas, or deficits.
        self._trace = resolve_sink(sink)

    # ------------------------------------------------------------------
    # Introspection (used by recorders and experiments)
    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        return len(self._counters)

    @property
    def quotas(self) -> list[float]:
        """The ``IPSw_j`` quotas currently in force."""
        return list(self._quotas)

    @property
    def estimates(self) -> list[Optional[ThreadEstimate]]:
        """Latest per-thread estimates (None before the first sample)."""
        return self._estimator.estimates

    @property
    def history(self) -> list[SamplePoint]:
        """All ``Delta`` boundaries seen so far, in time order."""
        return list(self._history)

    def deficit_remaining(self, thread_id: int) -> float:
        return self._deficits[thread_id].remaining

    @property
    def measured_latencies(self) -> Optional[list[float]]:
        """Per-thread measured event latencies (None unless the
        controller runs with ``measure_miss_latency=True``)."""
        if self._latency_monitor is None:
            return None
        return self._latency_monitor.latencies()

    # ------------------------------------------------------------------
    # SwitchPolicy interface
    # ------------------------------------------------------------------
    def on_run_start(self, thread_id: int, now: float) -> None:
        self._deficits[thread_id].grant(self._quotas[thread_id])

    def instruction_budget(self, thread_id: int) -> float:
        return self._deficits[thread_id].remaining

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        self._counters[thread_id].retire(instructions, cycles)
        self._deficits[thread_id].consume(instructions)

    def on_miss(
        self, thread_id: int, now: float, latency: Optional[float] = None
    ) -> None:
        self._counters[thread_id].record_miss()
        if self._latency_monitor is not None and latency is not None:
            self._latency_monitor.record(thread_id, latency)

    def next_boundary(self, now: float) -> float:
        return self._next_boundary

    def on_boundary(self, now: float) -> None:
        """Recalculate estimates and quotas at a ``Delta`` boundary.

        The counters of the window just closed become the estimates for
        the next window (Section 3.1: "hardware counters of each Delta
        cycles are used as an estimation for the following Delta
        cycles").
        """
        samples = [c.sample_and_reset() for c in self._counters]
        miss_lats = None
        if self._latency_monitor is not None:
            miss_lats = self._latency_monitor.sample_and_reset()
        estimates = self._estimator.update_all(samples, miss_lats)
        self._quotas = quotas_from_estimates(
            estimates,
            self.params.fairness_target,
            self.params.miss_lat,
            self.params.min_quota,
            weights=self.params.weights,
        )
        self._history.append(
            SamplePoint(
                time=now,
                estimates=tuple(estimates),
                quotas=tuple(self._quotas),
                window_instructions=tuple(s.instructions for s in samples),
            )
        )
        if self._trace is not None and self._trace.wants(_TRACE_CONTROLLER):
            self._trace.emit(
                controller_sample(
                    time=now,
                    instructions=[s.instructions for s in samples],
                    cycles=[s.cycles for s in samples],
                    misses=[s.misses for s in samples],
                    ipc_st=[e.ipc_st for e in estimates],
                    quotas=list(self._quotas),
                    deficits=[d.remaining for d in self._deficits],
                )
            )
        while self._next_boundary <= now:
            self._next_boundary += self.params.sample_period
