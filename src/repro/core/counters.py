"""Per-thread hardware counters (paper Section 3.1).

The fairness mechanism needs three counters per thread, sampled every
``Delta`` cycles:

* ``Instrs_j``  -- instructions retired from thread *j*;
* ``Cycles_j``  -- cycles the thread was actually running (from the
  retirement of its first instruction after switch-in until it is
  switched out; switch overhead is excluded);
* ``Misses_j``  -- last-level cache misses that caused a thread switch
  (only the first miss of an overlapped cluster is counted).

From a sample the paper derives ``IPM`` (Eq. 11), ``CPM`` (Eq. 12) and
the estimated single-thread IPC (Eq. 13). The ``max(Misses, 1)`` in
Eqs. 11-12 covers the rare window in which a thread missed zero times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CounterSample", "HardwareCounters"]


@dataclass(frozen=True)
class CounterSample:
    """An immutable snapshot of one thread's counters over one window."""

    instructions: float
    cycles: float
    misses: int

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.cycles < 0 or self.misses < 0:
            raise ConfigurationError("counter values cannot be negative")

    @property
    def ipm(self) -> float:
        """Eq. 11: ``IPM = Instrs / max(Misses, 1)``."""
        return self.instructions / max(self.misses, 1)

    @property
    def cpm(self) -> float:
        """Eq. 12: ``CPM = Cycles / max(Misses, 1)``."""
        return self.cycles / max(self.misses, 1)

    def estimated_single_thread_ipc(self, miss_lat: float) -> float:
        """Eq. 13: estimated IPC of this thread had it run alone.

        Returns 0.0 for an empty sample (thread never ran in the
        window); callers are expected to fall back to a previous
        estimate in that case.
        """
        # repro-lint: disable=RL004 - exact zero means "never retired"
        if self.instructions == 0:
            return 0.0
        return self.ipm / (self.cpm + miss_lat)

    @property
    def is_empty(self) -> bool:
        """True when the thread retired nothing during the window."""
        # repro-lint: disable=RL004 - exact zero means "never retired"
        return self.instructions == 0


class HardwareCounters:
    """Mutable accumulator behind one thread's :class:`CounterSample`.

    The simulators call :meth:`retire` as instructions retire and
    :meth:`record_miss` when a miss triggers a thread switch; the
    fairness controller calls :meth:`sample_and_reset` at every
    ``Delta`` boundary.
    """

    def __init__(self) -> None:
        self._instructions = 0.0
        self._cycles = 0.0
        self._misses = 0

    def retire(self, instructions: float, cycles: float) -> None:
        """Account ``instructions`` retired over ``cycles`` running cycles."""
        if instructions < 0 or cycles < 0:
            raise ConfigurationError("cannot retire negative work")
        if not (math.isfinite(instructions) and math.isfinite(cycles)):
            raise ConfigurationError("retired work must be finite")
        self._instructions += instructions
        self._cycles += cycles

    def record_miss(self) -> None:
        """Account one switch-causing last-level cache miss."""
        self._misses += 1

    @property
    def current(self) -> CounterSample:
        """A snapshot of the counters without resetting them."""
        return CounterSample(self._instructions, self._cycles, self._misses)

    def sample_and_reset(self) -> CounterSample:
        """Snapshot the window's counters and clear them for the next window."""
        sample = self.current
        self._instructions = 0.0
        self._cycles = 0.0
        self._misses = 0
        return sample
