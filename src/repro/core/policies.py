"""The policy zoo: a registry of named, parameterized switch policies.

The paper evaluates one mechanism (Eq. 9 quotas + deficit counters)
against an unenforced baseline and a time-sharing strawman. This module
turns "which fairness policy runs" into data so alternative mechanisms
are comparable on the same grid: each policy registers a
:class:`PolicySpec` (name, citation, parameter schema, factory, batch
capability) and experiments select one with a :class:`PolicyConfig`
(name + parameter overrides), which the execution layer threads through
run specs, cache keys and checkpoints.

Built-in policies
-----------------
``none``
    Unenforced SOE baseline: switch only on misses (``F = 0``).
``fairness``
    The paper's mechanism: counters + Eq. 9 quotas + deficit counters.
``rr-timeshare``
    The Section 6 strawman: a fixed cycle quota per dispatch.
``icount``
    ICOUNT-style dispatch priority (:mod:`repro.core.icount`).
``lfoc-cluster``
    LFOC-style hungry/light clustering (:mod:`repro.core.lfoc`).
``drr-arbiter``
    NoC-style deficit round robin (:mod:`repro.core.drr`).

``none`` and ``fairness`` are *batch capable*: :meth:`PolicyConfig
.normalize` reduces them to the ``fairness`` field of a run spec, which
the vectorized backend knows how to fold into arrays. ``drr-arbiter``
is batch capable too -- it stays in the ``policy`` channel, but the
vectorized backend folds its fixed-quantum deficit carryover into the
same deficit-counter arrays. The other policies are scalar-only and
declare it via ``batch_capable=False``; the execution layer routes
them to the scalar reference engine.

Discoverable from the command line via ``python -m repro policies``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.controller import FairnessController, FairnessParams
from repro.core.drr import DEFAULT_QUANTUM, DrrArbiterPolicy
from repro.core.icount import IcountPolicy
from repro.core.lfoc import DEFAULT_IPM_THRESHOLD, LfocClusterPolicy
from repro.core.policy import SwitchPolicy, TimeSharingPolicy
from repro.errors import ConfigurationError

__all__ = [
    "PolicyParam",
    "PolicySpec",
    "PolicyConfig",
    "register_policy",
    "get_policy",
    "policy_names",
    "render_policy_table",
]


@dataclass(frozen=True)
class PolicyParam:
    """One tunable knob in a policy's parameter schema."""

    name: str
    default: float
    doc: str


@dataclass(frozen=True)
class PolicySpec:
    """A registered policy: identity, citation, schema and factory.

    ``factory(num_threads, config)`` builds a fresh
    :class:`~repro.core.policy.SwitchPolicy` per run (None for the
    unenforced baseline). ``batch_capable`` declares whether the
    vectorized engine backend can run the policy; scalar-only policies
    fall back to the reference engine.
    """

    name: str
    title: str
    reference: str
    batch_capable: bool
    params: tuple[PolicyParam, ...]
    factory: Callable[[int, "PolicyConfig"], Optional[SwitchPolicy]]

    def param_default(self, name: str) -> float:
        for param in self.params:
            if param.name == name:
                return param.default
        raise ConfigurationError(
            f"policy {self.name!r} has no parameter {name!r}; "
            f"schema: {[p.name for p in self.params] or '(none)'}"
        )


_REGISTRY: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Add a policy to the registry (names must be unique)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"policy {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_policy(name: str) -> PolicySpec:
    """Look up a registered policy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; registered policies: "
            f"{', '.join(policy_names())}"
        ) from None


def policy_names() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return tuple(_REGISTRY)


@dataclass(frozen=True)
class PolicyConfig:
    """A policy selection: registry name + per-run parameters.

    ``level`` is the enforcement level -- the fairness target ``F`` for
    level-aware policies (``fairness``, ``lfoc-cluster``); level-free
    policies (``icount``, ``drr-arbiter``, ``rr-timeshare``) ignore it.
    ``params`` overrides entries of the policy's parameter schema as
    sorted ``(name, value)`` pairs (a tuple so the config stays hashable
    for cache keys and checkpoint fingerprints).
    """

    name: str
    level: float = 1.0
    miss_lat: float = 300.0
    sample_period: float = 250_000.0
    params: tuple[tuple[str, float], ...] = field(default=())

    def __post_init__(self) -> None:
        spec = get_policy(self.name)  # raises for unknown names
        if not 0.0 <= self.level <= 1.0:
            raise ConfigurationError(
                f"policy level must be in [0, 1], got {self.level}"
            )
        if self.miss_lat < 0:
            raise ConfigurationError("miss_lat must be non-negative")
        if self.sample_period <= 0:
            raise ConfigurationError("sample_period must be positive")
        for name, _value in self.params:
            spec.param_default(name)  # raises for unknown parameters
        names = [name for name, _ in self.params]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate policy parameter overrides: {names}"
            )
        if sorted(names) != names:
            # Canonical order keeps equal configs equal (cache keys).
            object.__setattr__(self, "params", tuple(sorted(self.params)))

    @property
    def spec(self) -> PolicySpec:
        return get_policy(self.name)

    def param(self, name: str) -> float:
        """A parameter's effective value (override or schema default)."""
        for key, value in self.params:
            if key == name:
                return value
        return self.spec.param_default(name)

    def make(self, num_threads: int) -> Optional[SwitchPolicy]:
        """Build a fresh policy instance for one run (None = baseline)."""
        return self.spec.factory(num_threads, self)

    def normalize(self) -> tuple[Optional[FairnessParams], Optional["PolicyConfig"]]:
        """Reduce to ``(fairness, policy)`` run-spec fields.

        Batch-capable policies collapse into the ``fairness`` channel the
        vectorized backend understands: ``none`` becomes ``(None, None)``
        (the unenforced baseline) and ``fairness`` becomes its
        :class:`FairnessParams`. Every other policy is returned as-is in
        the ``policy`` channel, which only the scalar engine executes.
        """
        if self.name == "none":
            return None, None
        if self.name == "fairness":
            return (
                FairnessParams(
                    fairness_target=self.level,
                    miss_lat=self.miss_lat,
                    sample_period=self.sample_period,
                ),
                None,
            )
        return None, self


# ----------------------------------------------------------------------
# Built-in policies
# ----------------------------------------------------------------------
def _make_none(num_threads: int, config: PolicyConfig) -> Optional[SwitchPolicy]:
    return None


def _make_fairness(num_threads: int, config: PolicyConfig) -> Optional[SwitchPolicy]:
    return FairnessController(
        num_threads,
        FairnessParams(
            fairness_target=config.level,
            miss_lat=config.miss_lat,
            sample_period=config.sample_period,
        ),
    )


def _make_rr_timeshare(
    num_threads: int, config: PolicyConfig
) -> Optional[SwitchPolicy]:
    return TimeSharingPolicy(cycle_quota=config.param("cycle_quota"))


def _make_icount(num_threads: int, config: PolicyConfig) -> Optional[SwitchPolicy]:
    return IcountPolicy(num_threads)


def _make_lfoc(num_threads: int, config: PolicyConfig) -> Optional[SwitchPolicy]:
    return LfocClusterPolicy(
        num_threads,
        fairness_target=config.level,
        miss_lat=config.miss_lat,
        sample_period=config.sample_period,
        ipm_threshold=config.param("ipm_threshold"),
    )


def _make_drr(num_threads: int, config: PolicyConfig) -> Optional[SwitchPolicy]:
    return DrrArbiterPolicy(num_threads, quantum=config.param("quantum"))


register_policy(
    PolicySpec(
        name="none",
        title="unenforced SOE baseline (switch on miss only)",
        reference="paper Section 2 (F = 0)",
        batch_capable=True,
        params=(),
        factory=_make_none,
    )
)
register_policy(
    PolicySpec(
        name="fairness",
        title="paper mechanism: Eq. 9 quotas + deficit counters",
        reference="paper Sections 2.3, 3",
        batch_capable=True,
        params=(),
        factory=_make_fairness,
    )
)
register_policy(
    PolicySpec(
        name="rr-timeshare",
        title="round-robin time sharing (fixed cycle quota)",
        reference="paper Section 6 strawman",
        batch_capable=False,
        params=(
            PolicyParam(
                "cycle_quota",
                400.0,
                "cycles a thread may run per dispatch",
            ),
        ),
        factory=_make_rr_timeshare,
    )
)
register_policy(
    PolicySpec(
        name="icount",
        title="ICOUNT-style dispatch priority (fewest retired first)",
        reference="Tullsen et al., ISCA 1996",
        batch_capable=False,
        params=(),
        factory=_make_icount,
    )
)
register_policy(
    PolicySpec(
        name="lfoc-cluster",
        title="LFOC-style hungry/light clustering with per-cluster quotas",
        reference="Garcia-Garcia et al., LFOC/LFOC+",
        batch_capable=False,
        params=(
            PolicyParam(
                "ipm_threshold",
                DEFAULT_IPM_THRESHOLD,
                "IPM at or below which a thread is cache-hungry",
            ),
        ),
        factory=_make_lfoc,
    )
)
register_policy(
    PolicySpec(
        name="drr-arbiter",
        title="NoC-style deficit round robin over switch grants",
        reference="Shreedhar & Varghese, SIGCOMM 1995; Wang et al., NoC",
        batch_capable=True,
        params=(
            PolicyParam(
                "quantum",
                DEFAULT_QUANTUM,
                "instructions granted per dispatch",
            ),
        ),
        factory=_make_drr,
    )
)


def render_policy_table() -> str:
    """The ``python -m repro policies`` listing."""
    lines = ["Registered switch policies", ""]
    header = f"{'name':14} {'batch':5}  {'title':52} reference"
    lines.append(header)
    lines.append("-" * len(header))
    for name in policy_names():
        spec = get_policy(name)
        batch = "yes" if spec.batch_capable else "no"
        lines.append(f"{spec.name:14} {batch:5}  {spec.title:52} {spec.reference}")
        for param in spec.params:
            lines.append(
                f"{'':14} {'':5}    - {param.name} = {param.default:g} "
                f"({param.doc})"
            )
    lines.append("")
    lines.append(
        "batch = runnable on the vectorized engine backend; scalar-only "
        "policies fall back to the reference engine."
    )
    return "\n".join(lines)
