"""Switch-policy interface shared by both simulators.

The paper argues that SOE fairness can be handled at the *architectural*
level: the mechanism only needs to observe retirement, misses and time,
and to decide when a thread's turn ends. That observation/decision
surface is captured here as :class:`SwitchPolicy`, implemented by:

* :class:`NoFairnessPolicy` -- the baseline SOE scheme (``F = 0``):
  switch only on last-level cache misses (plus the engine-level
  maximum-cycles quota);
* :class:`TimeSharingPolicy` -- the Section 6 strawman: a fixed cycle
  quota per dispatch, OS-style time slicing;
* :class:`~repro.core.controller.FairnessController` -- the paper's
  mechanism (counters + Eq. 9 quotas + deficit counting);
* the comparison policies of the policy zoo
  (:mod:`repro.core.policies`): ICOUNT-style dispatch priority,
  LFOC-style cluster enforcement, and a NoC-style deficit-round-robin
  arbiter.

Both the segment-level engine (:mod:`repro.engine`) and the detailed
out-of-order core (:mod:`repro.cpu`) drive their policies through this
interface, which is what lets the same controller code run on either
substrate.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["SwitchPolicy", "NoFairnessPolicy", "TimeSharingPolicy"]


class SwitchPolicy(abc.ABC):
    """Decision surface for when the active SOE thread must yield."""

    def on_run_start(self, thread_id: int, now: float) -> None:
        """Called when ``thread_id`` is dispatched (switched in)."""

    def instruction_budget(self, thread_id: int) -> float:
        """Instructions the thread may retire in this dispatch before a
        forced switch. ``math.inf`` disables instruction-quota switches."""
        return math.inf

    def cycle_budget(self, thread_id: int) -> float:
        """Cycles the thread may run in this dispatch before a forced
        switch. ``math.inf`` defers to the engine's maximum-cycles quota."""
        return math.inf

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        """Called as the active thread retires work."""

    def on_miss(
        self, thread_id: int, now: float, latency: Optional[float] = None
    ) -> None:
        """Called when a switch-causing long-latency event occurs.

        ``latency`` is the event's actual stall latency when the
        substrate knows it (variable-latency events, Section 6); None
        when only the configured constant applies.
        """

    def on_switch_out(self, thread_id: int, reason: str, now: float) -> None:
        """Called when the thread yields (``reason`` is one of
        ``"miss"``, ``"quota"``, ``"cycle_quota"``, ``"done"``)."""

    def next_boundary(self, now: float) -> float:
        """Absolute time of the next policy event (e.g. the ``Delta``
        sampling boundary); ``math.inf`` when the policy has none."""
        return math.inf

    def on_boundary(self, now: float) -> None:
        """Called when simulation time reaches :meth:`next_boundary`."""

    def select_thread(self, ready: Sequence[int], now: float) -> Optional[int]:
        """Pick the next thread to dispatch from ``ready`` (non-empty,
        ascending thread ids).

        Return a member of ``ready`` to override the substrate's default
        least-recently-dispatched round robin, or ``None`` to defer to
        it. Substrates only consult this hook when a policy overrides
        it, so the default round-robin path stays bit-identical for
        policies that do not care about dispatch order.
        """
        return None


class NoFairnessPolicy(SwitchPolicy):
    """Baseline SOE (``F = 0``): threads switch only on misses."""


class TimeSharingPolicy(SwitchPolicy):
    """OS-style time slicing: a fixed cycle quota per dispatch.

    The Section 6 discussion shows why this is a poor fairness tool for
    SOE: a small quota costs constant pipeline flushes, a large quota
    equalizes *time* rather than *slowdown*. The policy optionally
    keeps miss-triggered switches (the engine always switches on misses;
    this policy only adds the cycle quota on top).
    """

    def __init__(self, cycle_quota: float) -> None:
        if not (cycle_quota > 0):
            raise ConfigurationError("cycle_quota must be positive")
        self._quota = float(cycle_quota)
        self._used: dict[int, float] = {}

    @property
    def cycle_quota(self) -> float:
        return self._quota

    def on_run_start(self, thread_id: int, now: float) -> None:
        self._used[thread_id] = 0.0

    def cycle_budget(self, thread_id: int) -> float:
        return max(0.0, self._quota - self._used.get(thread_id, 0.0))

    def on_retired(self, thread_id: int, instructions: float, cycles: float) -> None:
        self._used[thread_id] = self._used.get(thread_id, 0.0) + cycles
