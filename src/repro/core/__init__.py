"""The paper's primary contribution: SOE fairness model and enforcement.

Submodules
----------
model
    Closed-form analytical model (Eqs. 1-10).
fairness
    The fairness metric (Eq. 4) and related single-number metrics.
counters
    Per-thread hardware counters (``Instrs``, ``Cycles``, ``Misses``).
estimator
    Runtime single-thread IPC estimation (Eqs. 11-13).
quota
    The ``IPSw_j`` quota computation (Eq. 9).
deficit
    Deficit counters that maintain the quota as a long-run average.
policy
    The engine-agnostic :class:`SwitchPolicy` interface plus baselines.
controller
    :class:`FairnessController`, the full feedback mechanism.
policies
    The policy zoo: registry of named, parameterized switch policies.
icount / lfoc / drr
    Comparison policies (ICOUNT priority, LFOC clustering, DRR
    arbitration) evaluated against the paper's mechanism.
"""

from repro.core.controller import FairnessController, FairnessParams, SamplePoint
from repro.core.counters import CounterSample, HardwareCounters
from repro.core.deficit import DeficitCounter
from repro.core.estimator import IpcStEstimator, ThreadEstimate
from repro.core.fairness import (
    fairness,
    weighted_fairness,
    fairness_from_ipcs,
    harmonic_mean_fairness,
    speedups,
    weighted_speedup,
)
from repro.core.drr import DrrArbiterPolicy
from repro.core.icount import IcountPolicy
from repro.core.latency import MissLatencyMonitor
from repro.core.lfoc import LfocClusterPolicy
from repro.core.model import SoeModel, ThreadParams, compute_ipsw, single_thread_ipc
from repro.core.policies import (
    PolicyConfig,
    PolicyParam,
    PolicySpec,
    get_policy,
    policy_names,
    register_policy,
    render_policy_table,
)
from repro.core.policy import NoFairnessPolicy, SwitchPolicy, TimeSharingPolicy
from repro.core.quota import quotas_from_estimates

__all__ = [
    "CounterSample",
    "DeficitCounter",
    "DrrArbiterPolicy",
    "FairnessController",
    "FairnessParams",
    "HardwareCounters",
    "IcountPolicy",
    "IpcStEstimator",
    "LfocClusterPolicy",
    "MissLatencyMonitor",
    "NoFairnessPolicy",
    "PolicyConfig",
    "PolicyParam",
    "PolicySpec",
    "SamplePoint",
    "SoeModel",
    "SwitchPolicy",
    "ThreadEstimate",
    "ThreadParams",
    "TimeSharingPolicy",
    "compute_ipsw",
    "fairness",
    "fairness_from_ipcs",
    "get_policy",
    "harmonic_mean_fairness",
    "policy_names",
    "quotas_from_estimates",
    "register_policy",
    "render_policy_table",
    "single_thread_ipc",
    "speedups",
    "weighted_fairness",
    "weighted_speedup",
]
