"""Analytical model of Switch-on-Event multithreading (paper Section 2).

The paper models a single-threaded program as a sequence of instruction
segments delimited by long-latency last-level cache misses:

* ``IPM`` -- average useful instructions between two consecutive misses.
* ``CPM`` -- average execution cycles between those misses (excluding the
  miss stall itself).

From those two characteristics and the machine parameters ``miss_lat``
(average memory access latency) and ``switch_lat`` (thread switch
overhead), the model predicts single-thread IPC (Eq. 1), per-thread SOE
IPC (Eq. 2 / Eq. 6), fairness (Eq. 4 / 5 / 7), the instruction quota
``IPSw`` that enforces a target fairness (Eq. 9), and total SOE
throughput (Eq. 10).

This module is pure arithmetic: it contains no simulation state and is
used both by the offline analysis experiments (Table 2, Figure 3) and by
the tests that validate the simulators against the closed-form model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ThreadParams",
    "SoeModel",
    "compute_ipsw",
    "single_thread_ipc",
    "soe_ipcs_unenforced",
    "unenforced_fairness",
]


@dataclass(frozen=True)
class ThreadParams:
    """Program-behaviour parameters of one thread (paper Section 2.1).

    Parameters
    ----------
    ipc_no_miss:
        Retirement rate, in instructions per cycle, while the thread is
        executing between misses (i.e. excluding miss stalls).
    ipm:
        Average number of instructions between two consecutive
        last-level cache misses (Instructions Per Miss).
    """

    ipc_no_miss: float
    ipm: float

    def __post_init__(self) -> None:
        if not (self.ipc_no_miss > 0 and math.isfinite(self.ipc_no_miss)):
            raise ConfigurationError(
                f"ipc_no_miss must be positive and finite, got {self.ipc_no_miss}"
            )
        if not (self.ipm > 0 and math.isfinite(self.ipm)):
            raise ConfigurationError(f"ipm must be positive and finite, got {self.ipm}")

    @property
    def cpm(self) -> float:
        """Average cycles between misses (Cycles Per Miss)."""
        return self.ipm / self.ipc_no_miss

    def single_thread_ipc(self, miss_lat: float) -> float:
        """IPC of this thread when executed alone (Eq. 1)."""
        return self.ipm / (self.cpm + miss_lat)


def single_thread_ipc(ipm: float, cpm: float, miss_lat: float) -> float:
    """Eq. 1: ``IPC_ST = IPM / (CPM + miss_lat)``.

    Free-function form used by the runtime estimator, where IPM and CPM
    come from hardware counters rather than from :class:`ThreadParams`.
    """
    if cpm + miss_lat <= 0:
        raise ConfigurationError("cpm + miss_lat must be positive")
    return ipm / (cpm + miss_lat)


def soe_ipcs_unenforced(
    ipms: Sequence[float],
    cpms: Sequence[float],
    switch_lat: float,
) -> list[float]:
    """Eq. 2: ``IPC_SOE_j = IPM_j / sum_k (CPM_k + switch_lat)``.

    Per-thread SOE IPC with no fairness enforcement: every thread runs
    its full inter-miss segment, so a rotation over all threads takes
    ``sum_k (CPM_k + S)`` cycles during which thread *j* retires
    ``IPM_j`` instructions. The shared denominator is the fairness
    problem in one line — a frequently-missing thread contributes little
    and receives little. :meth:`SoeModel.soe_ipcs` generalizes this to
    quota-enforced segments and reduces to it at F = 0.
    """
    if len(ipms) != len(cpms):
        raise ConfigurationError(
            f"mismatched lengths: {len(ipms)} IPMs vs {len(cpms)} CPMs"
        )
    if not ipms:
        raise ConfigurationError("at least one thread is required")
    round_cycles = sum(cpms) + switch_lat * len(cpms)
    if round_cycles <= 0:
        raise ConfigurationError("rotation must take positive cycles")
    return [ipm / round_cycles for ipm in ipms]


def unenforced_fairness(cpms: Sequence[float], miss_lat: float) -> float:
    """Eq. 5: ``Fairness(F=0) = min_{j,k} (CPM_j + L) / (CPM_k + L)``.

    Substituting Eq. 1 and Eq. 2 into the fairness metric cancels the
    IPMs: unenforced fairness is a pure workload property, the worst
    ratio of per-miss segment durations. Equals
    ``(CPM_min + L) / (CPM_max + L)``.
    """
    if not cpms:
        raise ConfigurationError("at least one thread is required")
    if any(cpm <= 0 for cpm in cpms):
        raise ConfigurationError("CPM values must be positive")
    if miss_lat < 0:
        raise ConfigurationError("miss_lat must be non-negative")
    return (min(cpms) + miss_lat) / (max(cpms) + miss_lat)


def compute_ipsw(
    ipm: float,
    ipc_st: float,
    cpm_min: float,
    miss_lat: float,
    fairness_target: float,
) -> float:
    """Eq. 9: the per-thread instructions-per-switch quota.

    ``IPSw_j = min(IPM_j, IPC_ST_j / F * (CPM_min + miss_lat))``

    A target fairness of 0 disables forced switches entirely, which is
    represented by an infinite quota (the ``min`` with ``IPM`` in the
    paper exists only because a quota above IPM never fires -- the thread
    misses first -- so for F=0 we simply return ``inf``).
    """
    if not 0.0 <= fairness_target <= 1.0:
        raise ConfigurationError(
            f"fairness target must be in [0, 1], got {fairness_target}"
        )
    # repro-lint: disable=RL004 - F=0 is an exact, validated sentinel input
    if fairness_target == 0.0:
        return math.inf
    quota = ipc_st * (cpm_min + miss_lat) / fairness_target
    return min(ipm, quota)


class SoeModel:
    """Two-or-more-thread analytical SOE model (paper Section 2).

    The model answers "what if" questions without simulation: given the
    per-thread program characteristics, what are the single-thread IPCs,
    the per-thread SOE IPCs with or without fairness enforcement, the
    resulting fairness, and total throughput.

    Example (the paper's Example 2)::

        >>> model = SoeModel(
        ...     [ThreadParams(2.5, 15_000), ThreadParams(2.5, 1_000)],
        ...     miss_lat=300, switch_lat=25)
        >>> round(model.fairness(0.0), 2)
        0.11
        >>> round(model.fairness(1.0), 2)
        1.0
    """

    def __init__(
        self,
        threads: Sequence[ThreadParams],
        miss_lat: float = 300.0,
        switch_lat: float = 25.0,
    ) -> None:
        if len(threads) < 2:
            raise ConfigurationError("SoeModel needs at least two threads")
        if miss_lat < 0 or switch_lat < 0:
            raise ConfigurationError("latencies must be non-negative")
        self.threads = list(threads)
        self.miss_lat = float(miss_lat)
        self.switch_lat = float(switch_lat)

    # ------------------------------------------------------------------
    # Single-thread characteristics
    # ------------------------------------------------------------------
    def single_thread_ipcs(self) -> list[float]:
        """Eq. 1 for every thread."""
        return [t.single_thread_ipc(self.miss_lat) for t in self.threads]

    @property
    def cpm_min(self) -> float:
        """``CPM_min = min_j CPM_j`` (used by Eq. 9)."""
        return min(t.cpm for t in self.threads)

    # ------------------------------------------------------------------
    # Quotas and switch behaviour
    # ------------------------------------------------------------------
    def quotas(self, fairness_target: float) -> list[float]:
        """Eq. 9 quota for every thread at the given target fairness."""
        cpm_min = self.cpm_min
        return [
            compute_ipsw(
                t.ipm,
                t.single_thread_ipc(self.miss_lat),
                cpm_min,
                self.miss_lat,
                fairness_target,
            )
            for t in self.threads
        ]

    def _ipsw_cpsw(self, fairness_target: float) -> tuple[list[float], list[float]]:
        """Effective (IPSw, CPSw) per thread for a target fairness.

        A thread whose quota exceeds its IPM only ever switches on
        misses, so its effective instructions/cycles per switch are its
        IPM/CPM. Otherwise it runs ``IPSw`` instructions at its
        ``ipc_no_miss`` rate before a forced switch.
        """
        ipsws = []
        cpsws = []
        for thread, quota in zip(self.threads, self.quotas(fairness_target)):
            ipsw = min(quota, thread.ipm)
            ipsws.append(ipsw)
            cpsws.append(ipsw / thread.ipc_no_miss)
        return ipsws, cpsws

    # ------------------------------------------------------------------
    # SOE performance
    # ------------------------------------------------------------------
    def soe_ipcs(self, fairness_target: float = 0.0) -> list[float]:
        """Eq. 6: ``IPC_SOE_j = IPSw_j / sum_k (CPSw_k + switch_lat)``.

        Per-thread SOE IPC under quota enforcement; with
        ``fairness_target`` 0 every quota is infinite and this reduces
        to Eq. 2 (:func:`soe_ipcs_unenforced`).
        """
        ipsws, cpsws = self._ipsw_cpsw(fairness_target)
        round_cycles = sum(cpsws) + self.switch_lat * len(self.threads)
        return [ipsw / round_cycles for ipsw in ipsws]

    def throughput(self, fairness_target: float = 0.0) -> float:
        """Eq. 10: total SOE throughput ``sum_j IPC_SOE_j``."""
        return sum(self.soe_ipcs(fairness_target))

    def speedups(self, fairness_target: float = 0.0) -> list[float]:
        """Per-thread speedup ``IPC_SOE_j / IPC_ST_j`` (the paper's key ratio)."""
        soe_ipcs = self.soe_ipcs(fairness_target)
        return [soe / st for soe, st in zip(soe_ipcs, self.single_thread_ipcs())]

    def fairness(self, fairness_target: float = 0.0) -> float:
        """Predicted achieved fairness (Eq. 4 over the modelled speedups).

        With ``fairness_target == 0`` this reduces to Eq. 5:
        ``min_{j,k} (CPM_j + miss_lat) / (CPM_k + miss_lat)``.
        """
        speedups = self.speedups(fairness_target)
        return min(speedups) / max(speedups)

    def throughput_change(self, fairness_target: float) -> float:
        """Relative throughput change vs. no enforcement (Figure 3's y-axis).

        Negative values are degradation; positive values are the
        counter-intuitive improvement the paper notes for pairs with
        different ``IPC_no_miss``.
        """
        base = self.throughput(0.0)
        return self.throughput(fairness_target) / base - 1.0

    def soe_speedup_over_single_thread(self, fairness_target: float = 0.0) -> float:
        """Throughput gain of SOE over running the threads alone (footnote 6).

        Defined as total SOE IPC divided by the mean single-thread IPC:
        the gain in delivered instructions per cycle compared to giving
        each thread the whole machine in turn.
        """
        sts = self.single_thread_ipcs()
        return self.throughput(fairness_target) / (sum(sts) / len(sts))
