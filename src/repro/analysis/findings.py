"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one diagnostic at one source location. Findings
are value objects: rules yield them, the engine sorts/filters them, the
CLI renders them. The *fingerprint* deliberately excludes the line
number so a committed baseline survives unrelated edits above a
grandfathered finding; two identical findings in one file share a
fingerprint and are matched by count (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the lint exit status."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by one rule at one location."""

    path: str  #: repo-relative POSIX path of the offending file
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    rule: str  #: rule id, e.g. ``"RL004"``
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        digest = hashlib.sha256(
            f"{self.rule}::{self.path}::{self.message}".encode()
        ).hexdigest()
        return digest[:16]

    def render(self) -> str:
        """``path:line:col: RLxxx [severity] message`` (one terminal line)."""
        tag = " [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}]{tag} {self.message}"
        )
