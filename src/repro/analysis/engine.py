"""Lint engine: collect files, run rules, apply suppressions + baseline.

The engine is deliberately dependency-free and deterministic: files are
discovered in sorted order (by repo-relative POSIX path *string*, so
the order is byte-stable across filesystems and OSes), findings are
sorted by (path, line, col, rule), and the JSON report round-trips
byte-identically for identical inputs — the same property the
simulators guarantee, applied to the tool that polices it.

Analysis runs in two phases:

1. **Per file** — parse, suppression pragmas, equation scan, every
   per-file rule, and the whole-program
   :class:`~repro.analysis.callgraph.ModuleSummary`. This phase is
   memoized by content hash under ``--cache-dir``
   (:mod:`repro.analysis.cache`); a warm run skips it entirely for
   unchanged files.
2. **Whole program** — the equation table, the call graph, effect
   propagation, and every rule's ``finalize`` pass, always computed
   fresh from the (possibly cached) per-file results.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.cache import AnalysisCache, FileRecord, content_hash
from repro.analysis.callgraph import ModuleSummary, summarize_module
from repro.analysis.eqmap import EqClaim, EqMention, EqTable, scan_module, table_from_scans
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    ModuleInfo,
    ProjectInfo,
    Rule,
    all_rules,
    select_rules,
)
from repro.analysis.suppressions import Suppressions, parse_suppressions
from repro.errors import ConfigurationError

__all__ = [
    "LintResult",
    "run_lint",
    "discover_files",
    "default_repo_root",
    "check_source",
    "check_project",
]

#: The tree linted by default, relative to the repo root.
DEFAULT_TARGET = "src/repro"

#: Committed baseline location, relative to the repo root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def default_repo_root() -> Path:
    """The repository root (the directory holding ``src/`` and PAPER.md).

    Resolved from this file's location in a source checkout; falls back
    to the current working directory for installed packages.
    """
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


def discover_files(root: Path, targets: Sequence[str]) -> List[str]:
    """Resolve lint targets to sorted repo-relative POSIX paths.

    Every ``*.py`` regular file under a directory target is included —
    type-stub-only modules and empty ``__init__.py`` files too; the
    rules decide what matters, discovery never filters by content. The
    result is deduplicated and sorted by path *string* (not by
    ``Path``, whose component-wise ordering puts ``engine/batch.py``
    before ``engine.py``), so findings order is identical on every
    platform and filesystem.
    """
    relpaths: Set[str] = set()
    for target in targets:
        path = root / target
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if candidate.is_file():
                    relpaths.add(candidate.relative_to(root).as_posix())
        elif path.is_file():
            relpaths.add(path.relative_to(root).as_posix())
        else:
            raise ConfigurationError(f"lint target not found: {target}")
    return sorted(relpaths)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    eq_table: Optional[EqTable] = None
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    #: Files analyzed fresh this run (= cache misses; all files when
    #: caching is off). ``--changed-only`` reports only these.
    changed_files: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: The assembled project view (for ``--graph``); not serialized.
    project: Optional[ProjectInfo] = field(default=None, repr=False)

    @property
    def active(self) -> List[Finding]:
        """Findings that are neither suppressed nor baselined."""
        return [finding for finding in self.findings if not finding.baselined]

    @property
    def errors(self) -> List[Finding]:
        return [
            finding
            for finding in self.active
            if finding.severity is Severity.ERROR
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        # Cache statistics are deliberately absent: the report must be
        # byte-identical for identical inputs, cold or warm.
        return {
            "version": 1,
            "summary": {
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
                "findings": len(self.active),
                "baselined": sum(1 for f in self.findings if f.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline_entries": len(self.stale_baseline),
                "by_rule": self.by_rule(),
            },
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "severity": str(f.severity),
                    "message": f.message,
                    "baselined": f.baselined,
                    "fingerprint": f.fingerprint,
                }
                for f in self.findings
            ],
            "stale_baseline": list(self.stale_baseline),
            "eq_coverage": self.eq_table.to_json() if self.eq_table else None,
        }

    def graph_json(self) -> Dict[str, object]:
        """The ``--graph`` dump: call graph + inferred effect sets."""
        from repro.analysis.dataflow import effects_to_json

        if self.project is None:
            raise ConfigurationError(
                "no project view available for --graph (eq-table-only run?)"
            )
        return effects_to_json(self.project.graph(), self.project.taints())

    def to_sarif(self) -> Dict[str, object]:
        """Minimal SARIF 2.1.0 document (one run, one result per finding)."""
        rules_meta = [
            {
                "id": rule.meta.id,
                "name": rule.meta.name,
                "shortDescription": {"text": rule.meta.rationale},
                "defaultConfiguration": {
                    "level": "error"
                    if rule.meta.severity is Severity.ERROR
                    else "warning"
                },
            }
            for rule in all_rules()
        ]
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": "docs/STATIC_ANALYSIS.md",
                            "rules": rules_meta,
                        }
                    },
                    "results": [
                        {
                            "ruleId": f.rule,
                            "level": "note"
                            if f.baselined
                            else (
                                "error"
                                if f.severity is Severity.ERROR
                                else "warning"
                            ),
                            "message": {"text": f.message},
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": f.path},
                                        "region": {
                                            "startLine": f.line,
                                            "startColumn": f.col + 1,
                                        },
                                    }
                                }
                            ],
                        }
                        for f in self.findings
                    ],
                }
            ],
        }


def _load_module(path: Path, relpath: str) -> ModuleInfo:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {relpath}: {exc}") from exc
    return ModuleInfo(relpath=relpath, tree=tree, source=source)


def _analyze_file(
    module: ModuleInfo, source_hash: str, rules: Sequence[Rule]
) -> FileRecord:
    """The cacheable per-file phase: all rules, pragmas, scans, summary."""
    findings: List[Finding] = []
    for rule in rules:
        if rule.meta.applies_to(module.relpath):
            findings.extend(rule.check_module(module))
    claims, mentions = scan_module(module)
    return FileRecord(
        content_hash=source_hash,
        findings=sorted(findings),
        suppressions=parse_suppressions(module.source),
        claims=claims,
        mentions=mentions,
        summary=summarize_module(module),
    )


def run_lint(
    repo_root: Optional[Path] = None,
    targets: Sequence[str] = (DEFAULT_TARGET,),
    select: Sequence[str] = (),
    disable: Sequence[str] = (),
    baseline: Optional[Baseline] = None,
    cache_dir: Optional[Path] = None,
    changed_only: bool = False,
) -> LintResult:
    """Lint ``targets`` (repo-relative files or directories) end to end.

    With ``cache_dir``, unchanged files reuse their cached per-file
    analysis (all rules run on a miss, so the cache is valid for every
    ``select``/``disable`` combination). With ``changed_only``, the
    report keeps only findings anchored in files analyzed fresh this
    run — a developer loop mode; baseline staleness is not reported
    because unchanged files were not re-examined.
    """
    root = (repo_root or default_repo_root()).resolve()
    relpaths = discover_files(root, targets)

    cache = AnalysisCache.load(Path(cache_dir)) if cache_dir else None
    per_file_rules = all_rules()
    active_rules: List[Rule] = select_rules(select, disable)
    active_ids = {rule.meta.id for rule in active_rules}

    modules: List[ModuleInfo] = []
    summaries: Dict[str, ModuleSummary] = {}
    suppression_map: Dict[str, Suppressions] = {}
    raw: List[Finding] = []
    claims: List[EqClaim] = []
    mentions: List[EqMention] = []
    changed: List[str] = []

    for relpath in relpaths:
        path = root / relpath
        source = path.read_text()
        source_hash = content_hash(source)
        record = cache.lookup(relpath, source_hash) if cache else None
        if record is None or record.summary is None:
            module = _load_module(path, relpath)
            modules.append(module)
            changed.append(relpath)
            record = _analyze_file(module, source_hash, per_file_rules)
            if cache is not None:
                cache.store(relpath, record)
        assert record.summary is not None  # _analyze_file always builds one
        summaries[relpath] = record.summary
        suppression_map[relpath] = record.suppressions
        claims.extend(record.claims)
        mentions.extend(record.mentions)
        raw.extend(f for f in record.findings if f.rule in active_ids)

    if cache is not None:
        cache.prune(tuple(relpaths))
        cache.save()

    paper_path = root / "PAPER.md"
    eq_table: Optional[EqTable] = None
    if paper_path.exists():
        eq_table = table_from_scans(claims, mentions, paper_path.read_text())

    project = ProjectInfo(
        modules=modules,
        eq_table=eq_table,
        repo_root=root,
        summaries=summaries,
        suppressions=suppression_map,
    )
    for rule in active_rules:
        raw.extend(rule.finalize(project))

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        suppressions = suppression_map.get(finding.path)
        if suppressions is not None and suppressions.is_suppressed(finding):
            suppressed.append(finding)
        else:
            kept.append(finding)

    stale: List[str] = []
    if baseline is not None:
        kept, stale = apply_baseline(kept, baseline)

    if changed_only:
        changed_set = set(changed)
        kept = [f for f in kept if f.path in changed_set]
        suppressed = [f for f in suppressed if f.path in changed_set]
        stale = []

    return LintResult(
        findings=sorted(kept),
        suppressed=sorted(suppressed),
        stale_baseline=stale,
        eq_table=eq_table,
        files_checked=len(relpaths),
        rules_run=[rule.meta.id for rule in active_rules],
        changed_files=changed,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(relpaths),
        project=project,
    )


def check_source(
    rule: Rule,
    source: str,
    relpath: str = "src/repro/synthetic.py",
) -> List[Finding]:
    """Run one rule over an in-memory snippet (test helper).

    Suppressions in the snippet are honoured; scope (``meta.paths``) is
    honoured too, so pass a ``relpath`` inside the rule's scope.
    """
    tree = ast.parse(source)
    module = ModuleInfo(relpath=relpath, tree=tree, source=source)
    if not rule.meta.applies_to(relpath):
        return []
    suppressions = parse_suppressions(source)
    return sorted(
        finding
        for finding in rule.check_module(module)
        if not suppressions.is_suppressed(finding)
    )


def check_project(
    rule: Rule,
    sources: Mapping[str, str],
    docs: Optional[Mapping[str, str]] = None,
) -> List[Finding]:
    """Run one rule over an in-memory multi-file project (test helper).

    ``sources`` maps repo-relative paths to Python source; ``docs`` maps
    paths to plain-text content for rules that cross-check
    documentation. Runs the rule's per-module pass (scope honoured) and
    its ``finalize`` pass, then applies each file's inline suppressions.
    """
    modules: List[ModuleInfo] = []
    for relpath in sorted(sources):
        modules.append(
            ModuleInfo(
                relpath=relpath,
                tree=ast.parse(sources[relpath]),
                source=sources[relpath],
            )
        )
    suppression_map = {
        module.relpath: parse_suppressions(module.source) for module in modules
    }
    project = ProjectInfo(
        modules=modules,
        summaries={
            module.relpath: summarize_module(module) for module in modules
        },
        suppressions=suppression_map,
        docs=dict(docs or {}),
    )
    raw: List[Finding] = []
    for module in modules:
        if rule.meta.applies_to(module.relpath):
            raw.extend(rule.check_module(module))
    raw.extend(rule.finalize(project))
    return sorted(
        finding
        for finding in raw
        if not (
            (suppressions := suppression_map.get(finding.path)) is not None
            and suppressions.is_suppressed(finding)
        )
    )
