"""Lint engine: collect files, run rules, apply suppressions + baseline.

The engine is deliberately dependency-free and deterministic: files are
discovered in sorted order, findings are sorted by (path, line, col,
rule), and the JSON report round-trips byte-identically for identical
inputs — the same property the simulators guarantee, applied to the
tool that polices it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.eqmap import EqTable, build_table
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    ModuleInfo,
    ProjectInfo,
    Rule,
    select_rules,
)
from repro.analysis.suppressions import Suppressions, parse_suppressions
from repro.errors import ConfigurationError

__all__ = ["LintResult", "run_lint", "default_repo_root", "check_source"]

#: The tree linted by default, relative to the repo root.
DEFAULT_TARGET = "src/repro"

#: Committed baseline location, relative to the repo root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def default_repo_root() -> Path:
    """The repository root (the directory holding ``src/`` and PAPER.md).

    Resolved from this file's location in a source checkout; falls back
    to the current working directory for installed packages.
    """
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    eq_table: Optional[EqTable] = None
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that are neither suppressed nor baselined."""
        return [finding for finding in self.findings if not finding.baselined]

    @property
    def errors(self) -> List[Finding]:
        return [
            finding
            for finding in self.active
            if finding.severity is Severity.ERROR
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "summary": {
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
                "findings": len(self.active),
                "baselined": sum(1 for f in self.findings if f.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline_entries": len(self.stale_baseline),
                "by_rule": self.by_rule(),
            },
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "severity": str(f.severity),
                    "message": f.message,
                    "baselined": f.baselined,
                    "fingerprint": f.fingerprint,
                }
                for f in self.findings
            ],
            "stale_baseline": list(self.stale_baseline),
            "eq_coverage": self.eq_table.to_json() if self.eq_table else None,
        }

    def to_sarif(self) -> Dict[str, object]:
        """Minimal SARIF 2.1.0 document (one run, one result per finding)."""
        from repro.analysis.registry import all_rules

        rules_meta = [
            {
                "id": rule.meta.id,
                "name": rule.meta.name,
                "shortDescription": {"text": rule.meta.rationale},
                "defaultConfiguration": {
                    "level": "error"
                    if rule.meta.severity is Severity.ERROR
                    else "warning"
                },
            }
            for rule in all_rules()
        ]
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": "docs/STATIC_ANALYSIS.md",
                            "rules": rules_meta,
                        }
                    },
                    "results": [
                        {
                            "ruleId": f.rule,
                            "level": "note"
                            if f.baselined
                            else (
                                "error"
                                if f.severity is Severity.ERROR
                                else "warning"
                            ),
                            "message": {"text": f.message},
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": f.path},
                                        "region": {
                                            "startLine": f.line,
                                            "startColumn": f.col + 1,
                                        },
                                    }
                                }
                            ],
                        }
                        for f in self.findings
                    ],
                }
            ],
        }


def _load_module(path: Path, relpath: str) -> ModuleInfo:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {relpath}: {exc}") from exc
    return ModuleInfo(relpath=relpath, tree=tree, source=source)


def run_lint(
    repo_root: Optional[Path] = None,
    targets: Sequence[str] = (DEFAULT_TARGET,),
    select: Sequence[str] = (),
    disable: Sequence[str] = (),
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``targets`` (repo-relative files or directories) end to end."""
    root = (repo_root or default_repo_root()).resolve()
    files: List[Path] = []
    for target in targets:
        path = root / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigurationError(f"lint target not found: {target}")
    files = sorted(set(files))

    modules: List[ModuleInfo] = []
    suppression_map: Dict[str, Suppressions] = {}
    for path in files:
        relpath = path.relative_to(root).as_posix()
        module = _load_module(path, relpath)
        modules.append(module)
        suppression_map[relpath] = parse_suppressions(module.source)

    paper_path = root / "PAPER.md"
    eq_table: Optional[EqTable] = None
    if paper_path.exists():
        eq_table = build_table(modules, paper_path.read_text())

    project = ProjectInfo(modules=modules, eq_table=eq_table)
    rules: List[Rule] = select_rules(select, disable)

    raw: List[Finding] = []
    for module in modules:
        for rule in rules:
            if not rule.meta.applies_to(module.relpath):
                continue
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.finalize(project))

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        suppressions = suppression_map.get(finding.path)
        if suppressions is not None and suppressions.is_suppressed(finding):
            suppressed.append(finding)
        else:
            kept.append(finding)

    stale: List[str] = []
    if baseline is not None:
        kept, stale = apply_baseline(kept, baseline)

    return LintResult(
        findings=sorted(kept),
        suppressed=sorted(suppressed),
        stale_baseline=stale,
        eq_table=eq_table,
        files_checked=len(files),
        rules_run=[rule.meta.id for rule in rules],
    )


def check_source(
    rule: Rule,
    source: str,
    relpath: str = "src/repro/synthetic.py",
) -> List[Finding]:
    """Run one rule over an in-memory snippet (test helper).

    Suppressions in the snippet are honoured; scope (``meta.paths``) is
    honoured too, so pass a ``relpath`` inside the rule's scope.
    """
    tree = ast.parse(source)
    module = ModuleInfo(relpath=relpath, tree=tree, source=source)
    if not rule.meta.applies_to(relpath):
        return []
    suppressions = parse_suppressions(source)
    return sorted(
        finding
        for finding in rule.check_module(module)
        if not suppressions.is_suppressed(finding)
    )
