"""Inline ``# repro-lint: disable=...`` suppression comments.

Three forms are recognized:

* same-line: ``x = risky()  # repro-lint: disable=RL004 - reason`` —
  suppresses the listed rules on that line only;
* next-line: a comment-only line suppresses the listed rules on the
  following source line (for statements too long to share a line with
  the pragma). When the following lines are decorators, the pragma
  skips past them to the ``def``/``class`` line itself, so a pragma
  placed above a decorated definition suppresses findings anchored at
  the definition (where rules report them), not at the decorator;
* file-level: ``# repro-lint: disable-file=RL002 - reason`` anywhere in
  the file suppresses the rules for the whole file.

The free-text reason after ``-`` is encouraged (the docs require one in
review) but not enforced mechanically. Suppressions are parsed from raw
source lines, not the AST, so they work on any line including
decorators and comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.analysis.findings import Finding

__all__ = ["Suppressions", "parse_suppressions"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class Suppressions:
    """Parsed suppression pragmas of one file."""

    #: line number -> rule ids suppressed on that line
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file
    file_level: Set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_level:
            return True
        return finding.rule in self.by_line.get(finding.line, set())

    @property
    def rules_used(self) -> FrozenSet[str]:
        used: Set[str] = set(self.file_level)
        for rules in self.by_line.values():
            used |= rules
        return frozenset(used)


def _skip_decorators(lines: List[str], target: int) -> int:
    """Advance a next-line pragma target past decorator lines.

    Findings on decorated defs anchor at the ``def`` line, so a pragma
    above ``@decorator`` must reach past it. Decorator argument lists
    may span lines; bracket depth tracks where each one ends. Falls
    back to the original target for malformed input.
    """
    index = target
    while index <= len(lines) and lines[index - 1].lstrip().startswith("@"):
        depth = 0
        while index <= len(lines):
            code = lines[index - 1].split("#", 1)[0]
            depth += (
                code.count("(") + code.count("[") + code.count("{")
                - code.count(")") - code.count("]") - code.count("}")
            )
            index += 1
            if depth <= 0:
                break
    return index if index <= len(lines) else target


def parse_suppressions(source: str) -> Suppressions:
    """Extract every pragma from raw source text."""
    suppressions = Suppressions()
    lines: List[str] = source.splitlines()
    for index, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        kind = match.group(1)
        rules = {part.strip() for part in match.group(2).split(",")}
        if kind == "disable-file":
            suppressions.file_level |= rules
            continue
        stripped = line[: match.start()].strip()
        if stripped:
            # Pragma shares the line with code: suppress this line.
            target = index
        else:
            # Comment-only pragma: suppress the next line (skipping any
            # decorators so the pragma lands on the def itself).
            target = _skip_decorators(lines, index + 1)
        suppressions.by_line.setdefault(target, set()).update(rules)
    return suppressions
