"""Content-hash analysis cache: skip parsing + per-file rules on warm runs.

One JSON index per ``--cache-dir`` maps each file's repo-relative path
to its cached analysis, keyed by the sha256 of the file *content* (not
mtime -- the cache is correct across checkouts, copies, and CI
restores). A record stores everything the per-file phase produces:

* the raw findings of **every** per-file rule (pre-suppression,
  pre-baseline), so one cache serves any ``--select``/``--disable``
  combination and suppression edits invalidate naturally with the file;
* the parsed suppression pragmas;
* the file's equation claims/mentions (:mod:`repro.analysis.eqmap`);
* the whole-program :class:`~repro.analysis.callgraph.ModuleSummary`.

Cross-file passes (call-graph build, taint propagation, the finalize
rules) are cheap relative to parsing + per-file rule sweeps; they
recompute every run from the cached summaries. The index additionally
records a digest over the analysis package's own sources, so editing
any rule, the engine, or this module invalidates the whole cache --
the cache can never serve results from an older analyzer.

Corrupt or version-mismatched caches are treated as empty, never as an
error: the cache is an accelerator, not a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import ModuleSummary
from repro.analysis.eqmap import EqClaim, EqMention
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import Suppressions

__all__ = [
    "CACHE_FORMAT",
    "FileRecord",
    "AnalysisCache",
    "analyzer_digest",
    "content_hash",
]

#: Bump when the record layout changes (belt-and-braces alongside the
#: analyzer digest, which already invalidates on any analyzer edit).
CACHE_FORMAT = 1

_INDEX_NAME = "repro-lint-cache.json"

_digest_memo: Dict[str, str] = {}


def analyzer_digest() -> str:
    """sha256 over the analysis package's own sources.

    Any edit to a rule, the engine, or the cache machinery changes the
    digest and invalidates every cache built by the older analyzer.
    """
    if "digest" not in _digest_memo:
        package_dir = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            hasher.update(path.relative_to(package_dir).as_posix().encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _digest_memo["digest"] = hasher.hexdigest()
    return _digest_memo["digest"]


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def _finding_to_json(finding: Finding) -> dict:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
        "severity": str(finding.severity),
    }


def _finding_from_json(data: dict) -> Finding:
    return Finding(
        path=str(data["path"]),
        line=int(data["line"]),
        col=int(data["col"]),
        rule=str(data["rule"]),
        message=str(data["message"]),
        severity=Severity(data["severity"]),
    )


def _suppressions_to_json(suppressions: Suppressions) -> dict:
    return {
        "by_line": {
            str(line): sorted(rules)
            for line, rules in sorted(suppressions.by_line.items())
        },
        "file_level": sorted(suppressions.file_level),
    }


def _suppressions_from_json(data: dict) -> Suppressions:
    return Suppressions(
        by_line={
            int(line): set(rules) for line, rules in data["by_line"].items()
        },
        file_level=set(data["file_level"]),
    )


@dataclass
class FileRecord:
    """Everything the per-file analysis phase produced for one file."""

    content_hash: str
    #: Raw findings of every per-file rule (pre-suppression/baseline).
    findings: List[Finding] = field(default_factory=list)
    suppressions: Suppressions = field(default_factory=Suppressions)
    claims: List[EqClaim] = field(default_factory=list)
    mentions: List[EqMention] = field(default_factory=list)
    summary: Optional[ModuleSummary] = None

    def to_json(self) -> dict:
        return {
            "hash": self.content_hash,
            "findings": [_finding_to_json(f) for f in self.findings],
            "suppressions": _suppressions_to_json(self.suppressions),
            "claims": [
                {
                    "number": c.number,
                    "qualname": c.qualname,
                    "relpath": c.relpath,
                    "line": c.line,
                }
                for c in self.claims
            ],
            "mentions": [
                {"number": m.number, "relpath": m.relpath, "line": m.line}
                for m in self.mentions
            ],
            "summary": None if self.summary is None else self.summary.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "FileRecord":
        return cls(
            content_hash=str(data["hash"]),
            findings=[_finding_from_json(f) for f in data["findings"]],
            suppressions=_suppressions_from_json(data["suppressions"]),
            claims=[
                EqClaim(
                    number=int(c["number"]),
                    qualname=str(c["qualname"]),
                    relpath=str(c["relpath"]),
                    line=int(c["line"]),
                )
                for c in data["claims"]
            ],
            mentions=[
                EqMention(
                    number=int(m["number"]),
                    relpath=str(m["relpath"]),
                    line=int(m["line"]),
                )
                for m in data["mentions"]
            ],
            summary=(
                None
                if data["summary"] is None
                else ModuleSummary.from_json(data["summary"])
            ),
        )


@dataclass
class AnalysisCache:
    """The on-disk per-file cache under one ``--cache-dir``."""

    directory: Path
    records: Dict[str, FileRecord] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _dirty: bool = field(default=False, repr=False)

    @property
    def index_path(self) -> Path:
        return self.directory / _INDEX_NAME

    @classmethod
    def load(cls, directory: Path) -> "AnalysisCache":
        """Load the index; mismatched or corrupt caches come back empty."""
        cache = cls(directory=directory)
        try:
            data = json.loads(cache.index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return cache
        if (
            not isinstance(data, dict)
            or data.get("format") != CACHE_FORMAT
            or data.get("analyzer") != analyzer_digest()
        ):
            return cache
        try:
            cache.records = {
                str(relpath): FileRecord.from_json(record)
                for relpath, record in data.get("files", {}).items()
            }
        except (KeyError, TypeError, ValueError, AttributeError):
            cache.records = {}
        return cache

    def lookup(self, relpath: str, source_hash: str) -> Optional[FileRecord]:
        """The cached record for an unchanged file, else None."""
        record = self.records.get(relpath)
        if record is not None and record.content_hash == source_hash:
            self.hits += 1
            return record
        self.misses += 1
        return None

    def store(self, relpath: str, record: FileRecord) -> None:
        self.records[relpath] = record
        self._dirty = True

    def prune(self, keep: Tuple[str, ...]) -> None:
        """Drop records for files no longer in the lint target set."""
        stale = set(self.records) - set(keep)
        for relpath in stale:
            del self.records[relpath]
            self._dirty = True

    def save(self) -> None:
        """Write the index back (only when something changed)."""
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "analyzer": analyzer_digest(),
            "files": {
                relpath: record.to_json()
                for relpath, record in sorted(self.records.items())
            },
        }
        tmp = self.index_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.index_path)
        self._dirty = False
