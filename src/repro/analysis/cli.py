"""``repro lint`` — the static-analysis front-end.

Examples::

    python -m repro lint                       # human-readable findings
    python -m repro lint --json report.json    # machine-readable report
    python -m repro lint --sarif lint.sarif    # SARIF 2.1.0 for code hosts
    python -m repro lint --eq-table            # paper-equation coverage map
    python -m repro lint --ratchet             # CI mode: stale baseline fails
    python -m repro lint --write-baseline      # grandfather current findings

Exit status: 0 when no non-baselined error findings (and, under
``--ratchet``, no stale baseline entries); 1 otherwise; 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    DEFAULT_BASELINE,
    DEFAULT_TARGET,
    LintResult,
    default_repo_root,
    run_lint,
)
from repro.analysis.registry import all_rules
from repro.errors import ConfigurationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soe-repro lint",
        description=(
            "repro-lint: AST static analysis enforcing determinism, "
            "float-safety, and paper-equation traceability "
            "(docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=[DEFAULT_TARGET],
        help=f"repo-relative files/directories to lint (default {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--repo-root",
        metavar="PATH",
        help="repository root (default: auto-detected from the package)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. RL001,RL004)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=f"baseline file, repo-relative (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the committed baseline (report everything live)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather exactly the current "
        "findings, then exit 0",
    )
    parser.add_argument(
        "--ratchet",
        action="store_true",
        help="fail when the baseline has stale entries (the grandfathered "
        "count may only go down; CI runs with this flag)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write the full JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--graph",
        metavar="FILE",
        help="write the project call graph with inferred effect sets "
        "to FILE as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-hash cache directory: unchanged files skip "
        "parsing and per-file rules on warm runs",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files analyzed fresh this run "
        "(needs --cache-dir to have any effect; developer loop mode)",
    )
    parser.add_argument(
        "--eq-table",
        action="store_true",
        help="print the paper-equation traceability table and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "markdown", "github"),
        default="text",
        help="finding rendering: 'github' emits ::error/::warning "
        "workflow annotations; 'markdown' applies to --eq-table "
        "(default text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the rendered text to FILE",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line, not individual findings",
    )
    return parser


def _split(value: Optional[str]) -> List[str]:
    if not value:
        return []
    return [part.strip() for part in value.split(",") if part.strip()]


def _write_text(path: str, text: str) -> None:
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)


def _annotation_escape(text: str) -> str:
    """Escape finding text for GitHub workflow-command message data."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _render_github(result: LintResult) -> str:
    """GitHub Actions workflow annotations, one per *active* finding.

    Baselined and suppressed findings are omitted: annotations surface
    what the ratchet would fail on, not grandfathered history.
    """
    lines: List[str] = []
    for finding in result.active:
        level = "error" if str(finding.severity) == "error" else "warning"
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}::"
            f"{_annotation_escape(finding.message)}"
        )
    lines.append(
        f"repro-lint: {len(result.active)} finding(s) across "
        f"{result.files_checked} files"
    )
    return "\n".join(lines)


def _render(result: LintResult, quiet: bool, ratchet: bool) -> str:
    lines: List[str] = []
    if not quiet:
        lines.extend(finding.render() for finding in result.findings)
        for entry in result.stale_baseline:
            prefix = "error" if ratchet else "note"
            lines.append(f"{prefix}: stale baseline entry: {entry}")
    by_rule = result.by_rule()
    breakdown = (
        " (" + ", ".join(f"{rule}:{count}" for rule, count in sorted(by_rule.items()))
        + ")"
        if by_rule
        else ""
    )
    baselined = sum(1 for finding in result.findings if finding.baselined)
    lines.append(
        f"repro-lint: {len(result.active)} finding(s){breakdown}, "
        f"{baselined} baselined, {len(result.suppressed)} suppressed, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies) across "
        f"{result.files_checked} files"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            meta = rule.meta
            print(f"{meta.id}  {meta.name:28s} [{meta.severity}]")
            print(f"       {meta.rationale}")
            scope = ", ".join(meta.paths)
            print(f"       scope: {scope}")
            if meta.exempt:
                print(f"       exempt: {', '.join(meta.exempt)}")
        return 0

    repo_root = (
        pathlib.Path(args.repo_root) if args.repo_root else default_repo_root()
    )
    baseline_path = repo_root / args.baseline

    try:
        baseline = (
            None
            if (args.no_baseline or args.write_baseline)
            else Baseline.load(baseline_path)
        )
        result = run_lint(
            repo_root=repo_root,
            targets=tuple(args.targets),
            select=_split(args.select),
            disable=_split(args.disable),
            baseline=baseline,
            cache_dir=(
                pathlib.Path(args.cache_dir) if args.cache_dir else None
            ),
            changed_only=args.changed_only,
        )
    except ConfigurationError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.eq_table:
        if result.eq_table is None:
            print("repro-lint: error: PAPER.md not found", file=sys.stderr)
            return 2
        text = (
            result.eq_table.render_markdown()
            if args.format == "markdown"
            else result.eq_table.render_text()
        )
        print(text)
        if args.output:
            _write_text(args.output, text + "\n")
        return 0

    if args.write_baseline:
        new_baseline = Baseline.from_findings(result.active)
        new_baseline.save(baseline_path)
        print(
            f"repro-lint: baseline rewritten with {new_baseline.total} "
            f"finding(s) -> {baseline_path}"
        )
        return 0

    if args.format == "github":
        text = _render_github(result)
    else:
        text = _render(result, quiet=args.quiet, ratchet=args.ratchet)
    print(text)
    if args.output:
        _write_text(args.output, text + "\n")

    if args.graph:
        try:
            payload = (
                json.dumps(result.graph_json(), indent=2, sort_keys=True)
                + "\n"
            )
        except ConfigurationError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        if args.graph == "-":
            sys.stdout.write(payload)
        else:
            _write_text(args.graph, payload)
    if args.json:
        payload = json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            _write_text(args.json, payload)
    if args.sarif:
        _write_text(
            args.sarif,
            json.dumps(result.to_sarif(), indent=2, sort_keys=True) + "\n",
        )

    exit_code = result.exit_code
    if args.ratchet and result.stale_baseline:
        exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
