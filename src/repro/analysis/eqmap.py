"""Paper-equation traceability: registry, claims, mentions, tables.

The reproduction's contract with the paper is carried by docstrings:
a function whose docstring *starts* with ``Eq. N:`` **claims** to be
the canonical implementation of that equation; any other ``Eq. N``
appearing in a docstring is a **mention** (context, cross-reference).
References to *other* papers' numbering -- ``Eq. N of <Source>`` /
``Eq. N in <Source>``, with a capitalized source -- are neither.
This module extracts both, builds the equation registry from the
numbers PAPER.md actually cites (Equations 1-10 and 11-13 for this
paper), and renders the coverage map — as terminal text with an ASCII
mention histogram (``repro lint --eq-table``), and as Markdown for
``docs/STATIC_ANALYSIS.md``.

Rule RL005 consumes the same data: every registry equation must be
claimed by exactly one function, and every mentioned number must exist
in the registry.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.registry import ModuleInfo

__all__ = [
    "EQUATION_TITLES",
    "EqClaim",
    "EqMention",
    "EqTable",
    "parse_paper_equations",
    "scan_module",
    "table_from_scans",
    "build_table",
]

#: Curated one-line statements of the paper's equations (Gabor, Weiss,
#: Mendelson, MICRO 2006), matching docs/MECHANISM.md's derivations.
EQUATION_TITLES: Dict[int, str] = {
    1: "single-thread IPC: IPC_ST = IPM / (CPM + L)",
    2: "unenforced per-thread SOE IPC: IPM_j / sum_k (CPM_k + S)",
    3: "per-thread speedup: IPC_SOE_j / IPC_ST_j",
    4: "fairness: min(speedups) / max(speedups)",
    5: "unenforced fairness closed form: min (CPM_j + L) / (CPM_k + L)",
    6: "enforced per-thread SOE IPC: IPSw_j / sum_k (CPSw_k + S)",
    7: "speedup-ratio derivation: IPSw_j proportional to IPC_ST_j",
    8: "worst-case speedup ratio admitted by a target: 1 / F",
    9: "instruction quota: IPSw_j = min(IPM_j, IPC_ST_j (CPM_min + L) / F)",
    10: "total SOE throughput: sum_j IPC_SOE_j",
    11: "IPM estimate from counters: Instrs / max(Misses, 1)",
    12: "CPM estimate from counters: Cycles / max(Misses, 1)",
    13: "runtime IPC_ST estimate: Eq. 1 on the Eq. 11/12 estimates",
}

#: ``Eq. 4`` / ``Eqs. 11-12`` / ``Equations 1-10`` (hyphen or en dash).
_EQ_REF = re.compile(r"(?:Eqs?\.|Equations?)\s*(\d+)(?:\s*[-–]\s*(\d+))?")

#: ``Eq. N of <Source>`` / ``Eq. N in <Source>`` cites *another* paper's
#: numbering (the source starts with a capital letter, optionally after
#: a quote or parenthesis), so it is neither a claim nor a mention of
#: this paper's equations. Plain prose like ``Eq. 1 in the limit`` is
#: lowercase and still counts.
_EXTERNAL_SOURCE = re.compile(r"\s+(?:of|in)\s+['\"(]?[A-Z]")

#: A docstring whose first line reads ``Eq. N: ...`` claims equation N.
_EQ_CLAIM = re.compile(r"^Eq\.\s*(\d+)\s*:")

#: Sanity cap when expanding ``Equations A-B`` ranges.
_MAX_RANGE = 50


@dataclass(frozen=True)
class EqClaim:
    """A function declaring itself the canonical implementation."""

    number: int
    qualname: str  #: dotted name within the module, e.g. ``SoeModel.quotas``
    relpath: str
    line: int

    @property
    def location(self) -> str:
        return f"{self.relpath}:{self.line}"


@dataclass(frozen=True)
class EqMention:
    """A non-claiming ``Eq. N`` reference inside a docstring."""

    number: int
    relpath: str
    line: int


def _iter_numbers(text: str) -> Iterator[Tuple[int, int]]:
    """Yield ``(number, match_start)`` for every reference, ranges expanded."""
    for match in _EQ_REF.finditer(text):
        if _EXTERNAL_SOURCE.match(text, match.end()):
            continue  # cites another paper's equation numbering
        first = int(match.group(1))
        last = int(match.group(2)) if match.group(2) else first
        if last < first or last - first > _MAX_RANGE:
            last = first
        for number in range(first, last + 1):
            yield number, match.start()


def parse_paper_equations(paper_text: str) -> List[int]:
    """The equation numbers PAPER.md cites (the registry's domain)."""
    return sorted({number for number, _ in _iter_numbers(paper_text)})


def _docstring_node(node: ast.AST) -> Optional[ast.Expr]:
    body = getattr(node, "body", None)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        return body[0]
    return None


def scan_module(module: ModuleInfo) -> Tuple[List[EqClaim], List[EqMention]]:
    """Extract every claim and mention from one file's docstrings."""
    claims: List[EqClaim] = []
    mentions: List[EqMention] = []

    def visit(node: ast.AST, prefix: str) -> None:
        doc_node = _docstring_node(node)
        if doc_node is not None:
            text = doc_node.value.value  # type: ignore[attr-defined]
            line = doc_node.lineno
            claimed_at: Optional[int] = None
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                claim = _EQ_CLAIM.match(text.lstrip())
                if claim:
                    number = int(claim.group(1))
                    qualname = f"{prefix}{node.name}" if prefix else node.name
                    claims.append(EqClaim(number, qualname, module.relpath, line))
                    claimed_at = text.find(claim.group(0))
            for number, start in _iter_numbers(text):
                if claimed_at is not None and start <= claimed_at + 4:
                    continue  # the claim itself is not also a mention
                mentions.append(EqMention(number, module.relpath, line))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, prefix)
            elif not isinstance(child, (ast.Lambda,)):
                # Plain statements may nest defs (e.g. under `if`).
                visit_children_only(child, prefix)

    def visit_children_only(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, prefix)
            else:
                visit_children_only(child, prefix)

    visit(module.tree, "")
    return claims, mentions


@dataclass
class EqTable:
    """The full traceability cross-reference."""

    registry: Dict[int, str]
    claims: List[EqClaim] = field(default_factory=list)
    mentions: List[EqMention] = field(default_factory=list)

    def claimants(self, number: int) -> List[EqClaim]:
        return sorted(
            (c for c in self.claims if c.number == number),
            key=lambda c: (c.relpath, c.line),
        )

    def mention_count(self, number: int) -> int:
        return sum(1 for m in self.mentions if m.number == number)

    @property
    def is_complete(self) -> bool:
        """Every registry equation claimed by exactly one function."""
        return all(len(self.claimants(n)) == 1 for n in self.registry)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_text(self, chart: bool = True) -> str:
        from repro.metrics.ascii_chart import bar_chart

        lines = ["Paper-equation traceability (PAPER.md -> src/repro)", ""]
        header = f"{'Eq.':>4}  {'implemented by':40} {'mentions':>8}  title"
        lines.append(header)
        lines.append("-" * len(header))
        for number in sorted(self.registry):
            claimants = self.claimants(number)
            if not claimants:
                owner = "(unclaimed)"
            elif len(claimants) == 1:
                owner = f"{claimants[0].qualname} ({claimants[0].location})"
            else:
                owner = f"CONFLICT: {', '.join(c.qualname for c in claimants)}"
            lines.append(
                f"{number:>4}  {owner:40} {self.mention_count(number):>8}  "
                f"{self.registry[number]}"
            )
        claimed = sum(1 for n in self.registry if len(self.claimants(n)) == 1)
        lines.append("")
        lines.append(
            f"coverage: {claimed}/{len(self.registry)} equations claimed by "
            f"exactly one function; {len(self.mentions)} docstring mentions"
        )
        if chart and self.registry:
            lines.append("")
            lines.append("docstring mentions per equation:")
            lines.append(
                bar_chart(
                    {
                        f"Eq. {number:>2}": float(self.mention_count(number))
                        for number in sorted(self.registry)
                    },
                    width=40,
                )
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            "| Eq. | Statement | Implemented by | Mentions |",
            "| --- | --- | --- | --- |",
        ]
        for number in sorted(self.registry):
            claimants = self.claimants(number)
            if not claimants:
                owner = "*(unclaimed)*"
            else:
                owner = "; ".join(
                    f"`{c.qualname}` ({c.location})" for c in claimants
                )
            lines.append(
                f"| {number} | {self.registry[number]} | {owner} "
                f"| {self.mention_count(number)} |"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "registry": {
                str(number): title for number, title in sorted(self.registry.items())
            },
            "claims": [
                {
                    "eq": claim.number,
                    "function": claim.qualname,
                    "path": claim.relpath,
                    "line": claim.line,
                }
                for claim in sorted(
                    self.claims, key=lambda c: (c.number, c.relpath, c.line)
                )
            ],
            "mention_counts": {
                str(number): self.mention_count(number)
                for number in sorted(self.registry)
            },
            "complete": self.is_complete,
        }


def table_from_scans(
    claims: List[EqClaim], mentions: List[EqMention], paper_text: str
) -> EqTable:
    """Assemble the table from pre-scanned claims/mentions.

    The analysis cache stores each file's scan results, so warm lint
    runs rebuild the table without re-parsing any module.
    """
    numbers = parse_paper_equations(paper_text)
    registry = {
        number: EQUATION_TITLES.get(number, "(no curated statement)")
        for number in numbers
    }
    return EqTable(registry=registry, claims=claims, mentions=mentions)


def build_table(
    modules: List[ModuleInfo], paper_text: str
) -> EqTable:
    """Scan every module and cross-reference against PAPER.md's registry."""
    claims: List[EqClaim] = []
    mentions: List[EqMention] = []
    for module in modules:
        module_claims, module_mentions = scan_module(module)
        claims.extend(module_claims)
        mentions.extend(module_mentions)
    return table_from_scans(claims, mentions, paper_text)
