"""Project-wide symbol table and call graph for whole-program rules.

The per-file rules (RL001-RL008) see one AST at a time; the hazards
introduced by fork-based supervision, the dual-backend engine, and the
policy registry cross module boundaries. This module builds the global
view they need in two steps:

1. :func:`summarize_module` reduces one parsed file to a
   :class:`ModuleSummary` -- every function (methods included, nested
   defs folded into their enclosing function) with its outgoing call
   and bare-callable-reference sites, its direct effects (see
   :mod:`repro.analysis.dataflow`), its module-global mutations, plus
   the module's imports, classes, and module-level globals. Summaries
   are plain data and round-trip through JSON, which is what makes the
   on-disk analysis cache (:mod:`repro.analysis.cache`) possible.
2. :func:`build_graph` resolves the textual call sites of every summary
   against the project symbol table into a :class:`CallGraph`: edges
   between fully-qualified function names, with unresolved callees kept
   for the ``--graph`` dump so the analysis is honest about its limits.

Resolution is deliberately lightweight (LFOC-style global
classification, not a points-to analysis): local names, ``import`` /
``from-import`` aliases (re-exports chased a bounded number of hops),
``self.``/``cls.`` methods (following base classes resolvable in the
project), and classes (a constructed class links to its ``__init__``
and, for callables, ``__call__``). Calls on arbitrary objects
(``sink.emit(...)``) stay unresolved -- the analysis never guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.registry import ModuleInfo

__all__ = [
    "CallSite",
    "DirectEffect",
    "GlobalMutation",
    "FunctionNode",
    "ClassNode",
    "GlobalDef",
    "ModuleSummary",
    "CallGraph",
    "module_dotted_name",
    "summarize_module",
    "build_graph",
]

#: Re-export chains (``from repro.engine import SoeRunSpec`` where the
#: package ``__init__`` itself re-imports) are chased this many hops.
_MAX_REEXPORT_HOPS = 5

#: Base-class chains (``self.method`` resolved through inheritance) are
#: chased this many levels.
_MAX_BASE_DEPTH = 5


def module_dotted_name(relpath: str) -> str:
    """Dotted module name of a repo-relative path.

    ``src/repro/engine/soe.py`` -> ``repro.engine.soe``;
    ``src/repro/telemetry/__init__.py`` -> ``repro.telemetry``.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class CallSite:
    """One outgoing call (or bare callable reference) in a function."""

    callee: str  #: dotted name as written, e.g. ``self.step`` / ``mod.f``
    line: int
    ref: bool = False  #: True = referenced as a value, not called

    def to_json(self) -> dict:
        return {"callee": self.callee, "line": self.line, "ref": self.ref}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "CallSite":
        return cls(str(data["callee"]), int(data["line"]), bool(data["ref"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class DirectEffect:
    """One direct (non-transitive) effect observed inside a function."""

    kind: str  #: one of :data:`repro.analysis.dataflow.EFFECT_KINDS`
    line: int
    detail: str  #: human-readable witness, e.g. ``random.random()``

    def to_json(self) -> dict:
        return {"kind": self.kind, "line": self.line, "detail": self.detail}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "DirectEffect":
        return cls(str(data["kind"]), int(data["line"]), str(data["detail"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class GlobalMutation:
    """A mutation of a module-level name inside a function body."""

    name: str  #: the module-global being mutated
    line: int
    how: str  #: e.g. ``global-assign`` / ``.append()`` / ``[]=``

    def to_json(self) -> dict:
        return {"name": self.name, "line": self.line, "how": self.how}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "GlobalMutation":
        return cls(str(data["name"]), int(data["line"]), str(data["how"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class FunctionNode:
    """One function (or method) in the project symbol table."""

    qualname: str  #: fully qualified, e.g. ``repro.engine.soe.SoeEngine.run``
    relpath: str
    name: str  #: simple name
    lineno: int
    cls: Optional[str]  #: enclosing class qual within the module, or None
    calls: Tuple[CallSite, ...] = ()
    effects: Tuple[DirectEffect, ...] = ()
    mutations: Tuple[GlobalMutation, ...] = ()

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "relpath": self.relpath,
            "name": self.name,
            "lineno": self.lineno,
            "cls": self.cls,
            "calls": [site.to_json() for site in self.calls],
            "effects": [effect.to_json() for effect in self.effects],
            "mutations": [mutation.to_json() for mutation in self.mutations],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FunctionNode":
        return cls(
            qualname=str(data["qualname"]),
            relpath=str(data["relpath"]),
            name=str(data["name"]),
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
            cls=None if data["cls"] is None else str(data["cls"]),
            calls=tuple(CallSite.from_json(item) for item in data["calls"]),  # type: ignore[union-attr]
            effects=tuple(
                DirectEffect.from_json(item) for item in data["effects"]  # type: ignore[union-attr]
            ),
            mutations=tuple(
                GlobalMutation.from_json(item) for item in data["mutations"]  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class ClassNode:
    """One class: its methods (simple names) and base-class spellings."""

    qualname: str  #: fully qualified, e.g. ``repro.engine.soe.SoeEngine``
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ClassNode":
        return cls(
            qualname=str(data["qualname"]),
            bases=tuple(str(base) for base in data["bases"]),  # type: ignore[union-attr]
            methods=tuple(str(m) for m in data["methods"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class GlobalDef:
    """One module-level binding, with its fork-safety documentation."""

    name: str
    line: int
    mutable: bool  #: heuristically holds mutable state
    #: The defining line (or the comment line above it) carries a
    #: ``fork-safe: <reason>`` marker documenting per-process
    #: reinitialization (see rule RL010).
    fork_safe: bool

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "mutable": self.mutable,
            "fork_safe": self.fork_safe,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "GlobalDef":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            mutable=bool(data["mutable"]),
            fork_safe=bool(data["fork_safe"]),
        )


@dataclass
class ModuleSummary:
    """Everything whole-program analysis needs from one file."""

    relpath: str
    module: str  #: dotted module name
    imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) for ``from m import n as x``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: qual-within-module -> node (e.g. ``SoeEngine.run``)
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    #: qual-within-module -> class node
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    #: module-level bindings by name
    globals: Dict[str, GlobalDef] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "imports": dict(sorted(self.imports.items())),
            "from_imports": {
                name: list(target)
                for name, target in sorted(self.from_imports.items())
            },
            "functions": {
                qual: node.to_json()
                for qual, node in sorted(self.functions.items())
            },
            "classes": {
                qual: node.to_json()
                for qual, node in sorted(self.classes.items())
            },
            "globals": {
                name: node.to_json()
                for name, node in sorted(self.globals.items())
            },
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ModuleSummary":
        return cls(
            relpath=str(data["relpath"]),
            module=str(data["module"]),
            imports={str(k): str(v) for k, v in data["imports"].items()},  # type: ignore[union-attr]
            from_imports={
                str(k): (str(v[0]), str(v[1]))  # type: ignore[index]
                for k, v in data["from_imports"].items()  # type: ignore[union-attr]
            },
            functions={
                str(k): FunctionNode.from_json(v)  # type: ignore[arg-type]
                for k, v in data["functions"].items()  # type: ignore[union-attr]
            },
            classes={
                str(k): ClassNode.from_json(v)  # type: ignore[arg-type]
                for k, v in data["classes"].items()  # type: ignore[union-attr]
            },
            globals={
                str(k): GlobalDef.from_json(v)  # type: ignore[arg-type]
                for k, v in data["globals"].items()  # type: ignore[union-attr]
            },
        )


# ---------------------------------------------------------------------------
# Summarizing one module
# ---------------------------------------------------------------------------

#: Marker documenting that a mutable module-global is reinitialized per
#: process (rule RL010); placed on the defining line or the line above.
FORK_SAFE_MARKER = "fork-safe:"

_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "bytearray",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_value(node: ast.expr, local_classes: Set[str]) -> bool:
    """Whether a module-level binding heuristically holds mutable state."""
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name is None:
            return False
        simple = name.split(".")[-1]
        return simple in _MUTABLE_CONSTRUCTORS or name in local_classes
    return False


def _has_fork_safe_marker(lines: List[str], lineno: int) -> bool:
    """``fork-safe:`` on the defining line or the comment line above."""
    for index in (lineno, lineno - 1):
        if 1 <= index <= len(lines) and FORK_SAFE_MARKER in lines[index - 1]:
            return True
    return False


class _FunctionScanner(ast.NodeVisitor):
    """Collect the call/reference/mutation sites of one function body.

    Nested function defs and lambdas are folded into the enclosing
    function: their calls and effects belong to whoever defines them.
    """

    def __init__(self, module_globals: Set[str]) -> None:
        self.calls: List[CallSite] = []
        self.mutations: List[GlobalMutation] = []
        self._module_globals = module_globals
        self._declared_global: Set[str] = set()
        self._called_nodes: Set[int] = set()

    _MUTATING_METHODS = {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "appendleft",
        "sort",
        "reverse",
    }

    def visit_Global(self, node: ast.Global) -> None:
        self._declared_global.update(node.names)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        if callee is not None:
            self._called_nodes.add(id(node.func))
            self.calls.append(CallSite(callee, node.lineno, ref=False))
            root, _, method = callee.rpartition(".")
            if (
                root in self._module_globals
                and method in self._MUTATING_METHODS
            ):
                self.mutations.append(
                    GlobalMutation(root, node.lineno, f".{method}()")
                )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and id(node) not in self._called_nodes:
            self.calls.append(CallSite(node.id, node.lineno, ref=True))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and id(node) not in self._called_nodes:
            dotted = _dotted(node)
            if dotted is not None:
                self.calls.append(CallSite(dotted, node.lineno, ref=True))
                return  # don't descend: the inner Name is part of this ref
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            dotted = _dotted(node.value)
            if dotted is not None and dotted in self._module_globals:
                self.mutations.append(
                    GlobalMutation(dotted, node.lineno, f".{node.attr}=")
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            dotted = _dotted(node.value)
            if dotted is not None and dotted in self._module_globals:
                self.mutations.append(
                    GlobalMutation(dotted, node.lineno, "[]=")
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_global_assign(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_global_assign([node.target], node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_global_assign([node.target], node.lineno)
        self.generic_visit(node)

    def _record_global_assign(
        self, targets: List[ast.expr], lineno: int
    ) -> None:
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in self._declared_global
            ):
                self.mutations.append(
                    GlobalMutation(target.id, lineno, "global-assign")
                )


def _iter_defs(
    body: List[ast.stmt], prefix: str
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (qual-within-module, node) for defs and classes in a body."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{prefix}{stmt.name}", stmt
        elif isinstance(stmt, ast.ClassDef):
            yield f"{prefix}{stmt.name}", stmt
            yield from _iter_defs(stmt.body, f"{prefix}{stmt.name}.")
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Defs guarded by TYPE_CHECKING / try-import blocks.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{prefix}{sub.name}", sub
                elif isinstance(sub, ast.ClassDef):
                    yield f"{prefix}{sub.name}", sub
                    yield from _iter_defs(sub.body, f"{prefix}{sub.name}.")


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Reduce one parsed file to its whole-program summary."""
    # Imported lazily: dataflow imports this module's types at import
    # time; the two-way dependency is broken at the function level.
    from repro.analysis.dataflow import function_effects

    dotted_module = module_dotted_name(module.relpath)
    summary = ModuleSummary(relpath=module.relpath, module=dotted_module)
    lines = module.lines

    for node in module.tree.body:
        if isinstance(node, ast.Import):
            for name in node.names:
                summary.imports[name.asname or name.name.split(".")[0]] = (
                    name.name
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: anchor at this package
                package_parts = dotted_module.split(".")
                # A package __init__'s dotted name IS its package; a
                # plain module must first drop its own last component.
                if not module.relpath.endswith("__init__.py"):
                    package_parts = package_parts[:-1]
                if node.level > 1:
                    package_parts = package_parts[
                        : len(package_parts) - (node.level - 1)
                    ]
                base = ".".join(package_parts)
                target = f"{base}.{node.module}" if node.module else base
            elif node.module is not None:
                target = node.module
            else:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                summary.from_imports[name.asname or name.name] = (
                    target,
                    name.name,
                )

    local_classes: Set[str] = set()
    for qual, node in _iter_defs(module.tree.body, ""):
        if isinstance(node, ast.ClassDef):
            local_classes.add(qual.split(".")[-1])

    # Module-level globals (assignments at module scope).
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            mutable = value is not None and _is_mutable_value(
                value, local_classes
            )
            summary.globals[target.id] = GlobalDef(
                name=target.id,
                line=stmt.lineno,
                mutable=mutable,
                fork_safe=_has_fork_safe_marker(lines, stmt.lineno),
            )

    module_globals = set(summary.globals)

    for qual, node in _iter_defs(module.tree.body, ""):
        if isinstance(node, ast.ClassDef):
            methods = tuple(
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            bases = tuple(
                base_name
                for base in node.bases
                if (base_name := _dotted(base)) is not None
            )
            summary.classes[qual] = ClassNode(
                qualname=f"{dotted_module}.{qual}",
                bases=bases,
                methods=methods,
            )
            continue
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        scanner = _FunctionScanner(module_globals)
        for stmt in node.body:
            scanner.visit(stmt)
        cls_qual = qual.rpartition(".")[0] or None
        effects = function_effects(node, summary, scanner.mutations)
        summary.functions[qual] = FunctionNode(
            qualname=f"{dotted_module}.{qual}",
            relpath=module.relpath,
            name=node.name,
            lineno=node.lineno,
            cls=cls_qual,
            calls=tuple(scanner.calls),
            effects=tuple(effects),
            mutations=tuple(scanner.mutations),
        )
    return summary


# ---------------------------------------------------------------------------
# The resolved project call graph
# ---------------------------------------------------------------------------


@dataclass
class CallGraph:
    """Resolved project call graph over fully-qualified function names."""

    #: fully-qualified name -> node, for every function in the project
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    #: caller -> called functions (resolved, sorted, deduplicated)
    call_edges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: caller -> functions referenced as values (callbacks, factories)
    ref_edges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: caller -> callee spellings the resolver could not place
    unresolved: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    summaries: Dict[str, ModuleSummary] = field(default_factory=dict)

    def callers_of(self, include_refs: bool = False) -> Dict[str, List[str]]:
        """Reverse adjacency: callee -> sorted list of callers."""
        reverse: Dict[str, List[str]] = {}
        edge_maps = [self.call_edges]
        if include_refs:
            edge_maps.append(self.ref_edges)
        for edges in edge_maps:
            for caller, callees in edges.items():
                for callee in callees:
                    reverse.setdefault(callee, []).append(caller)
        return {callee: sorted(set(callers)) for callee, callers in reverse.items()}

    def reachable_from(
        self, roots: List[str], include_refs: bool = False
    ) -> Set[str]:
        """Transitive closure over call (and optionally ref) edges."""
        seen: Set[str] = set()
        frontier = [root for root in sorted(set(roots)) if root in self.functions]
        seen.update(frontier)
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                neighbours = list(self.call_edges.get(node, ()))
                if include_refs:
                    neighbours.extend(self.ref_edges.get(node, ()))
                for neighbour in neighbours:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = sorted(next_frontier)
        return seen

    def to_json(self) -> dict:
        return {
            "functions": {
                qual: {
                    "path": node.relpath,
                    "line": node.lineno,
                    "calls": list(self.call_edges.get(qual, ())),
                    "refs": list(self.ref_edges.get(qual, ())),
                    "unresolved": list(self.unresolved.get(qual, ())),
                }
                for qual, node in sorted(self.functions.items())
            },
            "stats": {
                "functions": len(self.functions),
                "classes": len(self.classes),
                "call_edges": sum(len(v) for v in self.call_edges.values()),
                "ref_edges": sum(len(v) for v in self.ref_edges.values()),
                "unresolved_sites": sum(
                    len(v) for v in self.unresolved.values()
                ),
            },
        }


class _Resolver:
    """Resolves textual callee spellings against the symbol table."""

    def __init__(self, summaries: Mapping[str, ModuleSummary]) -> None:
        self._by_module: Dict[str, ModuleSummary] = {
            summary.module: summary for summary in summaries.values()
        }
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        for summary in summaries.values():
            for node in summary.functions.values():
                self.functions[node.qualname] = node
            for cls in summary.classes.values():
                self.classes[cls.qualname] = cls

    def _chase_reexport(self, module: str, name: str) -> Tuple[str, str]:
        """Follow ``from a import b`` chains through package re-exports."""
        for _ in range(_MAX_REEXPORT_HOPS):
            target = self._by_module.get(module)
            if target is None or name not in target.from_imports:
                break
            module, name = target.from_imports[name]
        return module, name

    def _resolve_root(
        self, summary: ModuleSummary, context: FunctionNode, root: str
    ) -> Optional[str]:
        """Resolve the first segment of a dotted callee to a full prefix."""
        if root in summary.functions:
            return f"{summary.module}.{root}"
        if root in summary.classes:
            return summary.classes[root].qualname
        if context.cls is not None:
            # Methods of the enclosing class shadow module names last.
            sibling = f"{context.cls}.{root}"
            if sibling in summary.functions:
                return f"{summary.module}.{sibling}"
        if root in summary.from_imports:
            module, name = self._chase_reexport(*summary.from_imports[root])
            candidate = f"{module}.{name}"
            if candidate in self._by_module:  # ``from pkg import module``
                return candidate
            return candidate
        if root in summary.imports:
            return summary.imports[root]
        return None

    def _method_on_class(self, cls_qual: str, method: str) -> Optional[str]:
        """Find ``method`` on a class or its project-resolvable bases."""
        seen: Set[str] = set()
        queue = [cls_qual]
        for _ in range(_MAX_BASE_DEPTH):
            next_queue: List[str] = []
            for qual in queue:
                if qual in seen:
                    continue
                seen.add(qual)
                cls = self.classes.get(qual)
                if cls is None:
                    continue
                if method in cls.methods:
                    return f"{qual}.{method}"
                module = qual.rpartition(".")[0]
                summary = self._by_module.get(module)
                for base in cls.bases:
                    resolved = None
                    if summary is not None:
                        if base in summary.classes:
                            resolved = summary.classes[base].qualname
                        elif base in summary.from_imports:
                            m, n = self._chase_reexport(
                                *summary.from_imports[base]
                            )
                            resolved = f"{m}.{n}"
                    if resolved is not None and resolved in self.classes:
                        next_queue.append(resolved)
            if not next_queue:
                break
            queue = next_queue
        return None

    def _class_entry(self, cls_qual: str) -> Optional[str]:
        """The function a constructed/called class instance executes."""
        for entry in ("__init__", "__call__"):
            resolved = self._method_on_class(cls_qual, entry)
            if resolved is not None and resolved in self.functions:
                return resolved
        return None

    def resolve(
        self, summary: ModuleSummary, context: FunctionNode, callee: str
    ) -> Optional[str]:
        """Fully-qualified function the callee names, or None."""
        parts = callee.split(".")
        if parts[0] in ("self", "cls") and context.cls is not None:
            if len(parts) != 2:
                return None
            cls_qual = f"{summary.module}.{context.cls}"
            resolved = self._method_on_class(cls_qual, parts[1])
            if resolved is not None and resolved in self.functions:
                return resolved
            return None
        prefix = self._resolve_root(summary, context, parts[0])
        if prefix is None:
            return None
        target = ".".join([prefix, *parts[1:]])
        # ``from pkg import name`` where name is itself re-exported.
        module, _, attr = target.rpartition(".")
        if attr and module in self._by_module:
            chased_m, chased_n = self._chase_reexport(module, attr)
            target = f"{chased_m}.{chased_n}"
        if target in self.functions:
            return target
        if target in self.classes:
            return self._class_entry(target)
        return None


def build_graph(summaries: Mapping[str, ModuleSummary]) -> CallGraph:
    """Resolve every summary's call sites into the project call graph."""
    resolver = _Resolver(summaries)
    graph = CallGraph(
        functions=dict(resolver.functions),
        classes=dict(resolver.classes),
        summaries=dict(summaries),
    )
    for relpath in sorted(summaries):
        summary = summaries[relpath]
        for node in summary.functions.values():
            calls: Set[str] = set()
            refs: Set[str] = set()
            unresolved: Set[str] = set()
            for site in node.calls:
                target = resolver.resolve(summary, node, site.callee)
                if target is None:
                    if not site.ref:
                        unresolved.add(site.callee)
                    continue
                if target == node.qualname:
                    continue  # self-recursion adds nothing
                (refs if site.ref else calls).add(target)
            if calls:
                graph.call_edges[node.qualname] = tuple(sorted(calls))
            refs -= calls
            if refs:
                graph.ref_edges[node.qualname] = tuple(sorted(refs))
            if unresolved:
                graph.unresolved[node.qualname] = tuple(sorted(unresolved))
    return graph
