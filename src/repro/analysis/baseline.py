"""Committed baseline of grandfathered findings, with a ratchet.

The baseline is a JSON file mapping finding *fingerprints* (see
:attr:`repro.analysis.findings.Finding.fingerprint` — line-number
independent) to an occurrence count plus a human-readable echo of the
finding. Applying a baseline marks up to ``count`` matching findings as
``baselined`` (they no longer fail the lint); any excess stays live.

The **ratchet**: the baseline may only shrink. When a baselined finding
disappears from the code, the stale entry must be removed from the
committed file (``repro lint --write-baseline`` rewrites it with only
the still-live findings). ``repro lint --ratchet`` turns stale entries
into errors, which is how CI forces the count monotonically down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError

__all__ = ["Baseline", "apply_baseline"]

_FORMAT = 1


@dataclass
class BaselineEntry:
    count: int
    example: str  #: rendered echo of one matching finding, for humans


class Baseline:
    """In-memory form of the committed baseline file."""

    def __init__(self, entries: "Dict[str, BaselineEntry] | None" = None) -> None:
        self.entries: Dict[str, BaselineEntry] = dict(entries or {})

    @property
    def total(self) -> int:
        return sum(entry.count for entry in self.entries.values())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"unreadable baseline {path}: {exc}") from exc
        if payload.get("format") != _FORMAT:
            raise ConfigurationError(
                f"baseline {path} has format {payload.get('format')!r}, "
                f"expected {_FORMAT}"
            )
        entries = {
            fingerprint: BaselineEntry(int(item["count"]), str(item["example"]))
            for fingerprint, item in payload.get("findings", {}).items()
        }
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "format": _FORMAT,
            "findings": {
                fingerprint: {"count": entry.count, "example": entry.example}
                for fingerprint, entry in sorted(self.entries.items())
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline grandfathering exactly the given findings."""
        baseline = cls()
        for finding in findings:
            entry = baseline.entries.get(finding.fingerprint)
            if entry is None:
                baseline.entries[finding.fingerprint] = BaselineEntry(
                    1, finding.render()
                )
            else:
                entry.count += 1
        return baseline


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[str]]:
    """Mark baselined findings; report stale baseline entries.

    Returns ``(findings, stale)`` where ``findings`` is the input list
    with up to ``count`` matches per fingerprint flagged ``baselined``
    (in source order), and ``stale`` is a human-readable list of
    baseline entries whose findings no longer (all) exist — the ratchet
    demands those entries be deleted from the committed file.
    """
    remaining = {
        fingerprint: entry.count for fingerprint, entry in baseline.entries.items()
    }
    out: List[Finding] = []
    for finding in sorted(findings):
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            finding = Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule=finding.rule,
                message=finding.message,
                severity=finding.severity,
                baselined=True,
            )
        out.append(finding)
    stale = [
        f"{baseline.entries[fingerprint].example} "
        f"({unused} baselined occurrence(s) no longer found)"
        for fingerprint, unused in sorted(remaining.items())
        if unused > 0
    ]
    return out, stale
