"""repro-lint: AST static analysis for the reproduction's invariants.

The package enforces, mechanically and on every PR, the properties the
repo's guarantees rest on:

* **determinism** — no ambient RNG (RL001), no wall-clock reads outside
  telemetry (RL002), no unordered-set iteration in simulation or
  serialization code (RL003);
* **float-safety** — no exact ``==``/``!=`` on float expressions in
  fairness/throughput math (RL004);
* **paper traceability** — every ``Eq. N`` docstring reference resolves
  against PAPER.md and each equation has exactly one canonical
  implementation (RL005);
* **hygiene** — no mutable default arguments (RL006), no bare
  ``except:`` (RL007).

Entry points: ``python -m repro lint`` (see :mod:`repro.analysis.cli`),
:func:`repro.analysis.engine.run_lint` for programmatic use, and
``docs/STATIC_ANALYSIS.md`` for the rule catalog and workflow.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.engine import (
    LintResult,
    check_source,
    default_repo_root,
    run_lint,
)
from repro.analysis.eqmap import EQUATION_TITLES, EqTable, build_table
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    ModuleInfo,
    ProjectInfo,
    Rule,
    RuleMeta,
    all_rules,
    get_rule,
    register,
    rule_ids,
)
from repro.analysis.suppressions import Suppressions, parse_suppressions

__all__ = [
    "Baseline",
    "apply_baseline",
    "LintResult",
    "check_source",
    "default_repo_root",
    "run_lint",
    "EQUATION_TITLES",
    "EqTable",
    "build_table",
    "Finding",
    "Severity",
    "ModuleInfo",
    "ProjectInfo",
    "Rule",
    "RuleMeta",
    "all_rules",
    "get_rule",
    "register",
    "rule_ids",
    "Suppressions",
    "parse_suppressions",
]
