"""Hygiene rules: RL006 (mutable default args), RL007 (bare except).

Neither rule is determinism-specific; both guard failure modes that
have historically produced confusing, state-dependent behaviour in
long-lived simulator objects (shared default containers) and swallowed
errors in experiment sweeps (bare ``except:`` hiding
``KeyboardInterrupt`` and real bugs alike).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, RuleMeta, register

__all__ = ["NoMutableDefaultArgs", "NoBareExcept"]

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}


@register
class NoMutableDefaultArgs(Rule):
    """RL006: default argument values must be immutable."""

    meta = RuleMeta(
        id="RL006",
        name="no-mutable-default-args",
        rationale=(
            "A mutable default is created once and shared by every call; "
            "simulator state leaking between runs this way is invisible "
            "to example-based tests. Default to None and construct inside."
        ),
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in _MUTABLE_CALLS
        return False

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is not None and self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); use "
                        "None and construct inside the function",
                    )


@register
class NoBareExcept(Rule):
    """RL007: ``except:`` must name an exception type."""

    meta = RuleMeta(
        id="RL007",
        name="no-bare-except",
        rationale=(
            "A bare except swallows KeyboardInterrupt/SystemExit and real "
            "bugs; catch a concrete exception type (the repo's error "
            "taxonomy lives in repro.errors)."
        ),
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' swallows KeyboardInterrupt and real "
                    "bugs; catch a concrete exception type",
                )
