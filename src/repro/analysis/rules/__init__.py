"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.analysis.registry` (each rule module applies the
``@register`` decorator at import time). The rule catalog with
rationales lives in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.analysis.rules import (
    concurrency,
    determinism,
    floats,
    hygiene,
    traceability,
    wholeprogram,
)

__all__ = [
    "concurrency",
    "determinism",
    "floats",
    "hygiene",
    "traceability",
    "wholeprogram",
]
