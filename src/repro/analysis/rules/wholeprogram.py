"""Whole-program rules RL009-RL012: cross-module guarantee enforcement.

The per-file rules see one AST at a time; these four run in the
``finalize`` phase against the project call graph
(:mod:`repro.analysis.callgraph`), the inferred effect sets
(:mod:`repro.analysis.dataflow`), and a handful of contract files
parsed on demand:

* **RL009 determinism-taint** — a simulation-kernel function
  (``repro/engine/``, ``repro/cpu/``, ``repro/core/``) transitively
  reaches an unseeded-RNG / wall-clock / set-iteration source through
  helpers that RL001-RL003 cannot see. The finding anchors at the
  kernel function and names the full propagation chain.
* **RL010 fork-unsafe-state** — a function executed inside supervised
  worker processes mutates module-level state whose definition carries
  no ``fork-safe:`` reinitialization marker. Worker code is the
  call/ref closure of ``_child_main`` plus every callable handed to
  ``Supervisor(...)`` / ``parallel_map(...)``.
* **RL011 backend-parity** — the scalar<->batch equivalence envelope,
  checked statically: every ``SoeRunSpec`` field (and every field of
  its nested parameter dataclasses) must be consumed by
  ``repro/engine/batch.py`` or refused by ``BatchBackend.supports()``;
  every registered ``PolicySpec`` must be consistent with its
  ``batch_capable`` flag.
* **RL012 telemetry-schema-drift** — the event builders in
  ``telemetry/events.py``, the ``EVENT_SCHEMAS`` table, and the event
  table in ``docs/TELEMETRY.md`` must agree exactly (names, categories,
  payload fields, schema version).

Suppression semantics for taint findings: a pragma at the *anchor*
(e.g. the kernel ``def`` for RL009, the mutation site for RL010)
suppresses the finding; a pragma for the corresponding per-file rule at
the *source* line (e.g. ``disable=RL001`` on the ``random.random()``
call) sanctions the source itself, so no taint is seeded from it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, DirectEffect, ModuleSummary
from repro.analysis.dataflow import (
    DETERMINISM_KINDS,
    EFFECT_RULES,
    propagate,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    ProjectInfo,
    Rule,
    RuleMeta,
    register,
)

__all__ = [
    "DeterminismTaint",
    "ForkUnsafeState",
    "BackendParity",
    "TelemetrySchemaDrift",
]

_KIND_LABELS = {
    "rng": "the process-global RNG",
    "wallclock": "the wall clock",
    "set_iter": "unsorted set iteration",
}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _filtered_seeds(
    project: ProjectInfo, graph: CallGraph
) -> Dict[str, List[DirectEffect]]:
    """Determinism-effect seeds, minus sources sanctioned inline.

    A source whose direct finding is suppressed for the matching
    per-file rule (``disable=RL001`` on the ``random.random()`` line)
    is a reviewed exception; it must not taint its callers either.
    """
    seeds: Dict[str, List[DirectEffect]] = {}
    for qualname, node in graph.functions.items():
        suppressions = project.suppressions.get(node.relpath)
        kept: List[DirectEffect] = []
        for effect in node.effects:
            if effect.kind not in DETERMINISM_KINDS:
                continue
            rule_id = EFFECT_RULES[effect.kind]
            if suppressions is not None and (
                rule_id in suppressions.file_level
                or rule_id in suppressions.by_line.get(effect.line, set())
            ):
                continue
            kept.append(effect)
        if kept:
            seeds[qualname] = kept
    return seeds


@register
class DeterminismTaint(Rule):
    """RL009: kernel functions must not reach nondeterminism via helpers.

    RL001/RL002/RL003 flag *direct* uses inside their path scope; a
    kernel function calling ``repro.metrics.helper`` which calls
    ``random.random()`` was invisible to all three. This rule closes
    that blind spot: it propagates determinism effects backwards over
    the call graph and reports every simulation-kernel function whose
    effect is acquired *through a callee* (direct uses stay the
    per-file rules' jurisdiction). The message names the full chain to
    the concrete source line, so the finding is actionable even though
    the source lives in another file.
    """

    meta = RuleMeta(
        id="RL009",
        name="determinism-taint",
        rationale=(
            "Bit-identical reproduction holds only if nothing reachable "
            "from the simulation kernels observes RNG state, the wall "
            "clock, or unsorted set order; per-file rules cannot see "
            "through helper calls, so taint is propagated over the "
            "project call graph."
        ),
    )

    #: Functions defined under these prefixes are simulation kernel.
    KERNEL_PATHS = ("src/repro/engine/", "src/repro/cpu/", "src/repro/core/")

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        graph = project.graph()
        # Call edges only: a bare reference (callback passed along) is
        # not yet an execution on the kernel path.
        taints = propagate(
            graph, _filtered_seeds(project, graph), include_refs=False
        )
        kernel = {
            qualname
            for qualname, node in graph.functions.items()
            if node.relpath.startswith(self.KERNEL_PATHS)
        }
        for qualname in sorted(kernel):
            per_kind = taints.get(qualname)
            if not per_kind:
                continue
            node = graph.functions[qualname]
            for kind in DETERMINISM_KINDS:
                taint = per_kind.get(kind)
                if taint is None or taint.direct:
                    continue  # direct effects are RL001-RL003's job
                if taint.chain[1] in kernel:
                    # A deeper kernel function carries the same taint
                    # and reports closer to the source; one finding per
                    # chain is enough.
                    continue
                source_node = graph.functions[taint.source]
                chain = " -> ".join(taint.chain)
                yield self.finding(
                    node.relpath,
                    node.lineno,
                    f"'{qualname}' reaches {_KIND_LABELS[kind]} via "
                    f"{chain}: {taint.detail} "
                    f"({source_node.relpath}:{taint.line}); plumb "
                    "explicit state through the call chain or sanction "
                    f"the source with 'disable={EFFECT_RULES[kind]}'",
                )


@register
class ForkUnsafeState(Rule):
    """RL010: no undocumented module-global mutation on worker paths.

    Supervised tasks run in forked child processes
    (:mod:`repro.experiments.supervisor`); module-level state mutated
    there dies with the worker, silently diverges between parent and
    children, and varies with task placement — the exact failure mode
    the ``jobs``-independence guarantee forbids. State that *is*
    reinitialized per process (like the fork-aware profile accumulator)
    declares it with a ``fork-safe: <reason>`` marker on (or directly
    above) the definition; everything else found mutating on a
    worker-reachable path is reported.
    """

    meta = RuleMeta(
        id="RL010",
        name="fork-unsafe-state",
        rationale=(
            "Results must be independent of --jobs; module globals "
            "mutated inside supervised workers are per-process and "
            "placement-dependent unless their reinitialization is "
            "documented with a fork-safe: marker."
        ),
    )

    #: The worker entry point: every task process starts here.
    CHILD_MAIN = "repro.experiments.supervisor._child_main"
    #: Call targets whose *arguments* ship callables into workers.
    DISPATCHERS = (
        "repro.experiments.supervisor.Supervisor.__init__",
        "repro.experiments.runner.parallel_map",
    )

    def _worker_roots(self, graph: CallGraph) -> Dict[str, str]:
        """Map each worker-code root to how it gets into a worker."""
        roots: Dict[str, str] = {}
        if self.CHILD_MAIN in graph.functions:
            roots[self.CHILD_MAIN] = "the worker entry point"
        for qualname in sorted(graph.functions):
            calls = graph.call_edges.get(qualname, ())
            dispatcher = next(
                (d for d in self.DISPATCHERS if d in calls), None
            )
            if dispatcher is None:
                continue
            via = f"handed to workers by {qualname}"
            # Callables referenced (not called) where a dispatcher is
            # invoked are the task functions shipped to workers.
            for target in graph.ref_edges.get(qualname, ()):
                roots.setdefault(target, via)
            # A class constructed here and shipped as the task callable
            # executes its __call__ in the worker (e.g. _TracedCall).
            for target in calls:
                owner, _, method = target.rpartition(".")
                if method != "__init__":
                    continue
                sibling = f"{owner}.__call__"
                if sibling in graph.functions:
                    roots.setdefault(sibling, via)
        return roots

    def _worker_closure(
        self, graph: CallGraph, roots: Dict[str, str]
    ) -> Dict[str, Tuple[str, ...]]:
        """Worker-reachable functions -> chain from their root."""
        chains: Dict[str, Tuple[str, ...]] = {
            root: (root,) for root in sorted(roots)
        }
        frontier = sorted(chains)
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                neighbours = [
                    *graph.call_edges.get(qualname, ()),
                    *graph.ref_edges.get(qualname, ()),
                ]
                for neighbour in sorted(set(neighbours)):
                    if neighbour not in chains:
                        chains[neighbour] = (*chains[qualname], neighbour)
                        next_frontier.append(neighbour)
            frontier = sorted(next_frontier)
        return chains

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        graph = project.graph()
        roots = self._worker_roots(graph)
        if not roots:
            return
        chains = self._worker_closure(graph, roots)
        for qualname in sorted(chains):
            node = graph.functions.get(qualname)
            if node is None or not node.mutations:
                continue
            summary = graph.summaries.get(node.relpath)
            if summary is None:
                continue
            for mutation in node.mutations:
                definition = summary.globals.get(mutation.name)
                if definition is None or definition.fork_safe:
                    continue
                root = chains[qualname][0]
                via = roots[root]
                chain = " -> ".join(chains[qualname])
                yield self.finding(
                    node.relpath,
                    mutation.line,
                    f"'{qualname}' mutates module global "
                    f"'{mutation.name}' ({mutation.how}) on a supervised-"
                    f"worker path ({via}; chain {chain}); the mutation is "
                    "per-process and dies with the worker — move the "
                    "state into the task result, or document per-process "
                    "reinitialization with a 'fork-safe:' marker on the "
                    "definition",
                )


@register
class BackendParity(Rule):
    """RL011: the batch backend's supported envelope, checked statically.

    The scalar backend is the reference; the vectorized backend must
    either *consume* every piece of a run spec or *refuse* the spec in
    ``supports()`` — a field it silently ignores is a configuration
    where the two backends compute different results while claiming
    equivalence. The rule parses the spec dataclasses, the batch
    kernel, and the policy registry, and cross-checks:

    * every ``SoeRunSpec`` field, and every field of its nested
      parameter dataclasses, appears in ``batch.py`` (as an attribute
      access — consumption or an explicit ``supports()`` envelope
      check) unless the whole parent field is refused wholesale
      (``if spec.<field> is not None: return False``);
    * every ``batch_capable=False`` policy is covered by that wholesale
      policy refusal;
    * every ``batch_capable=True`` policy is mentioned by the batch
      kernel or covered by the refusal (it must not simply vanish).
    """

    meta = RuleMeta(
        id="RL011",
        name="backend-parity",
        rationale=(
            "Scalar<->batch equivalence requires the batch backend to "
            "consume or refuse every run-spec field and every "
            "registered policy; a silently ignored field is a spec the "
            "backends disagree on."
        ),
    )

    SPEC_PATH = "src/repro/engine/backend.py"
    SPEC_CLASS = "SoeRunSpec"
    BATCH_PATH = "src/repro/engine/batch.py"
    BATCH_CLASS = "BatchBackend"
    POLICIES_PATH = "src/repro/core/policies.py"

    # ------------------------------------------------------------------
    # Small parsing helpers (all pure AST, no imports of the target)
    # ------------------------------------------------------------------
    @staticmethod
    def _class_def(
        tree: ast.Module, name: str
    ) -> Optional[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    @staticmethod
    def _dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, str, int]]:
        """(field name, annotation root class name, line) per field."""
        fields: List[Tuple[str, str, int]] = []
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            annotation = stmt.annotation
            # Unwrap Optional[...] / tuple[...] subscripts to the base.
            while isinstance(annotation, ast.Subscript):
                if (
                    isinstance(annotation.value, (ast.Name, ast.Attribute))
                    and _dotted(annotation.value) in ("Optional", "typing.Optional")
                    and isinstance(annotation.slice, (ast.Name, ast.Attribute, ast.Subscript))
                ):
                    annotation = annotation.slice
                else:
                    annotation = annotation.value
            base = _dotted(annotation) or ""
            fields.append((stmt.target.id, base.split(".")[-1], stmt.lineno))
        return fields

    @staticmethod
    def _attribute_names(tree: ast.AST) -> Set[str]:
        return {
            node.attr
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
        }

    @staticmethod
    def _mentions(tree: ast.AST) -> Set[str]:
        """Identifiers, attribute names and string constants in a tree."""
        mentions: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                mentions.add(node.id)
            elif isinstance(node, ast.Attribute):
                mentions.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                mentions.add(node.value)
        return mentions

    @classmethod
    def _wholesale_refusals(cls, supports: ast.AST) -> Set[str]:
        """Spec fields refused outright: ``if spec.F is not None: return False``.

        Handles one level of local aliasing (``policy = spec.policy``).
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(supports):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                dotted = _dotted(node.value)
                if dotted is not None and "." in dotted:
                    aliases[node.targets[0].id] = dotted.split(".")[-1]
        refused: Set[str] = set()
        for node in ast.walk(supports):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                continue
            returns_false = any(
                isinstance(sub, ast.Return)
                and isinstance(sub.value, ast.Constant)
                and sub.value.value is False
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not returns_false:
                continue
            dotted = _dotted(test.left)
            if dotted is None:
                continue
            field = dotted.split(".")[-1]
            refused.add(aliases.get(field, field) if "." not in dotted else field)
        return refused

    @staticmethod
    def _registered_policies(
        tree: ast.Module,
    ) -> List[Tuple[str, bool, int]]:
        """(name, batch_capable, line) per ``register_policy`` call."""
        policies: List[Tuple[str, bool, int]] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register_policy"
                and node.args
            ):
                continue
            spec_call = node.args[0]
            if not isinstance(spec_call, ast.Call):
                continue
            name: Optional[str] = None
            capable: Optional[bool] = None
            for keyword in spec_call.keywords:
                if keyword.arg == "name" and isinstance(
                    keyword.value, ast.Constant
                ):
                    name = keyword.value.value
                elif keyword.arg == "batch_capable" and isinstance(
                    keyword.value, ast.Constant
                ):
                    capable = keyword.value.value
            if isinstance(name, str) and isinstance(capable, bool):
                policies.append((name, capable, node.lineno))
        return policies

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        spec_module = project.find_module(self.SPEC_PATH)
        batch_module = project.find_module(self.BATCH_PATH)
        if spec_module is None or batch_module is None:
            return  # not a full repo layout (e.g. narrow lint target)
        spec_cls = self._class_def(spec_module.tree, self.SPEC_CLASS)
        if spec_cls is None:
            return
        batch_attrs = self._attribute_names(batch_module.tree)
        batch_mentions = self._mentions(batch_module.tree)

        supports: Optional[ast.AST] = None
        batch_cls = self._class_def(batch_module.tree, self.BATCH_CLASS)
        if batch_cls is not None:
            for stmt in batch_cls.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == "supports"
                ):
                    supports = stmt
        refused = self._wholesale_refusals(supports) if supports else set()

        spec_fields = self._dataclass_fields(spec_cls)
        spec_summary = project.summaries.get(self.SPEC_PATH)
        for field_name, base_class, line in spec_fields:
            if field_name not in batch_attrs and field_name not in refused:
                yield self.finding(
                    self.SPEC_PATH,
                    line,
                    f"SoeRunSpec.{field_name} is neither consumed by "
                    f"{self.BATCH_PATH} nor refused by "
                    "BatchBackend.supports(); the batch backend would "
                    "silently ignore it — consume it, or refuse specs "
                    "that set it",
                )
                continue
            if field_name in refused:
                continue  # wholesale refusal covers the nested fields
            # Expand nested parameter dataclasses defined in-project.
            nested = self._nested_fields(project, spec_summary, base_class)
            for nested_path, nested_name, nested_line in nested:
                if nested_name not in batch_attrs:
                    yield self.finding(
                        nested_path,
                        nested_line,
                        f"{base_class}.{nested_name} (reached via "
                        f"SoeRunSpec.{field_name}) is neither consumed by "
                        f"{self.BATCH_PATH} nor checked in "
                        "BatchBackend.supports(); scalar and batch would "
                        "diverge on specs that set it",
                    )

        policies_module = project.find_module(self.POLICIES_PATH)
        if policies_module is not None:
            for name, capable, line in self._registered_policies(
                policies_module.tree
            ):
                if not capable and "policy" not in refused:
                    yield self.finding(
                        self.POLICIES_PATH,
                        line,
                        f"policy '{name}' is registered batch_capable="
                        "False but BatchBackend.supports() no longer "
                        "refuses specs carrying a policy config; the "
                        "batch backend would run a policy it cannot "
                        "faithfully execute",
                    )
                elif (
                    capable
                    and name not in batch_mentions
                    and "policy" not in refused
                ):
                    yield self.finding(
                        self.POLICIES_PATH,
                        line,
                        f"policy '{name}' is registered batch_capable="
                        f"True but {self.BATCH_PATH} never mentions it "
                        "and supports() has no policy refusal; the "
                        "declared capability is unverifiable",
                    )

    def _nested_fields(
        self,
        project: ProjectInfo,
        spec_summary: Optional[ModuleSummary],
        base_class: str,
    ) -> List[Tuple[str, str, int]]:
        """Fields of a nested parameter dataclass, located in-project.

        Resolution goes through the spec module's import table (cached
        summary), so it works identically on cold and warm runs.
        """
        if not base_class or spec_summary is None:
            return []
        target = spec_summary.from_imports.get(base_class)
        if target is None:
            module_name = spec_summary.module
        else:
            module_name = target[0]
            base_class = target[1]
        relpath = next(
            (
                summary.relpath
                for summary in project.summaries.values()
                if summary.module == module_name
            ),
            None,
        )
        if relpath is None:
            return []
        module = project.find_module(relpath)
        if module is None:
            return []
        cls = self._class_def(module.tree, base_class)
        if cls is None:
            return []
        return [
            (relpath, name, line)
            for name, _base, line in self._dataclass_fields(cls)
        ]


@register
class TelemetrySchemaDrift(Rule):
    """RL012: builders, EVENT_SCHEMAS, and docs/TELEMETRY.md must agree.

    ``validate_event`` enforces the schema at runtime — but only for
    events that are actually emitted under a validating test. This rule
    checks the three authoritative surfaces against each other
    statically: every builder's literal (event name, category, ``v``
    key, payload keys) against its ``EVENT_SCHEMAS`` entry, every
    schema entry against some builder, and every schema entry against
    the event table in docs/TELEMETRY.md (row present, every payload
    field named, the documented schema version current). All findings
    anchor in ``events.py`` — the docs are data, the module is the
    suppressible surface.
    """

    meta = RuleMeta(
        id="RL012",
        name="telemetry-schema-drift",
        rationale=(
            "Trace consumers program against docs/TELEMETRY.md and "
            "EVENT_SCHEMAS; a builder or doc drifting from the schema "
            "ships events that validate nowhere or documents fields "
            "that do not exist."
        ),
    )

    EVENTS_PATH = "src/repro/telemetry/events.py"
    DOC_PATH = "docs/TELEMETRY.md"
    ENVELOPE = ("event", "cat", "v")

    @staticmethod
    def _const_env(tree: ast.Module) -> Dict[str, object]:
        """Module-level ``NAME = <constant>`` bindings."""
        env: Dict[str, object] = {}
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
            ):
                env[stmt.targets[0].id] = stmt.value.value
        return env

    @classmethod
    def _resolve_str(
        cls, node: ast.expr, env: Mapping[str, object]
    ) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            value = env.get(node.id)
            return value if isinstance(value, str) else None
        return None

    @classmethod
    def _schema_table(
        cls, tree: ast.Module, env: Mapping[str, object]
    ) -> Dict[str, Tuple[Optional[str], List[str], int]]:
        """EVENT_SCHEMAS literal -> {event: (category, fields, line)}."""
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not (
                len(targets) == 1
                and isinstance(targets[0], ast.Name)
                and targets[0].id == "EVENT_SCHEMAS"
                and isinstance(value, ast.Dict)
            ):
                continue
            table: Dict[str, Tuple[Optional[str], List[str], int]] = {}
            for key, entry in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(entry, ast.Tuple)
                    and len(entry.elts) == 2
                ):
                    continue
                category = cls._resolve_str(entry.elts[0], env)
                fields: List[str] = []
                if isinstance(entry.elts[1], ast.Dict):
                    for field_key in entry.elts[1].keys:
                        if isinstance(field_key, ast.Constant) and isinstance(
                            field_key.value, str
                        ):
                            fields.append(field_key.value)
                table[key.value] = (category, fields, key.lineno)
            return table
        return {}

    @classmethod
    def _builders(
        cls, tree: ast.Module, env: Mapping[str, object]
    ) -> List[Tuple[str, Optional[str], Optional[ast.expr], List[str], int]]:
        """Every returned event-dict literal.

        One entry per ``return {...}`` whose dict has an ``"event"``
        key: (event name, category, the ``v`` value node, payload keys,
        line).
        """
        builders = []
        for stmt in tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(stmt):
                if not (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Dict)
                ):
                    continue
                keys: Dict[str, ast.expr] = {}
                order: List[str] = []
                for key, value in zip(node.value.keys, node.value.values):
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys[key.value] = value
                        order.append(key.value)
                if "event" not in keys:
                    continue
                event = cls._resolve_str(keys["event"], env)
                if event is None:
                    continue
                category = (
                    cls._resolve_str(keys["cat"], env)
                    if "cat" in keys
                    else None
                )
                payload = [
                    key for key in order if key not in cls.ENVELOPE
                ]
                builders.append(
                    (event, category, keys.get("v"), payload, node.lineno)
                )
        return builders

    @staticmethod
    def _doc_rows(doc: str) -> Dict[str, str]:
        """Markdown table rows keyed by the event name in column two."""
        rows: Dict[str, str] = {}
        for line in doc.splitlines():
            if not line.lstrip().startswith("|"):
                continue
            cells = [cell.strip() for cell in line.split("|")]
            if len(cells) < 4:
                continue
            event_cell = cells[2]
            if event_cell.startswith("`") and event_cell.endswith("`"):
                rows.setdefault(event_cell.strip("`"), line)
        return rows

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        module = project.find_module(self.EVENTS_PATH)
        if module is None:
            return
        env = self._const_env(module.tree)
        version = env.get("SCHEMA_VERSION")
        schemas = self._schema_table(module.tree, env)
        if not schemas:
            return
        builders = self._builders(module.tree, env)
        built_events: Set[str] = set()

        for event, category, v_node, payload, line in builders:
            built_events.add(event)
            if event not in schemas:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"builder constructs event '{event}' which has no "
                    "EVENT_SCHEMAS entry; every emitted event must "
                    "validate",
                )
                continue
            schema_cat, schema_fields, _schema_line = schemas[event]
            if schema_cat is not None and category != schema_cat:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"builder for '{event}' sets cat="
                    f"{category!r} but EVENT_SCHEMAS declares "
                    f"{schema_cat!r}",
                )
            versioned = (
                isinstance(v_node, ast.Name)
                and v_node.id == "SCHEMA_VERSION"
            ) or (
                isinstance(v_node, ast.Constant)
                and v_node.value == version
            )
            if not versioned:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"builder for '{event}' does not stamp "
                    "v=SCHEMA_VERSION; hand-rolled versions drift",
                )
            missing = sorted(set(schema_fields) - set(payload))
            extra = sorted(set(payload) - set(schema_fields))
            if missing or extra:
                parts = []
                if missing:
                    parts.append(f"missing {missing}")
                if extra:
                    parts.append(f"extra {extra}")
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"builder for '{event}' payload disagrees with "
                    f"EVENT_SCHEMAS: {', '.join(parts)}",
                )

        for event in sorted(schemas):
            _category, _fields, line = schemas[event]
            if event not in built_events:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"EVENT_SCHEMAS declares event '{event}' but no "
                    "builder constructs it; dead schema entries hide "
                    "real drift",
                )

        doc = project.read_text(self.DOC_PATH)
        if doc is None:
            return  # docs not in this checkout; nothing to cross-check
        rows = self._doc_rows(doc)
        for event in sorted(schemas):
            category, fields, line = schemas[event]
            row = rows.get(event)
            if row is None:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"event '{event}' has no row in the {self.DOC_PATH} "
                    "event table; trace consumers program against that "
                    "table",
                )
                continue
            if category is not None and f"`{category}`" not in row:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"the {self.DOC_PATH} row for '{event}' does not "
                    f"name its category '{category}'",
                )
            missing_fields = [
                field for field in fields if f"`{field}`" not in row
            ]
            if missing_fields:
                yield self.finding(
                    self.EVENTS_PATH,
                    line,
                    f"the {self.DOC_PATH} row for '{event}' omits "
                    f"payload field(s) {missing_fields}",
                )
        if isinstance(version, int) and (
            f'"v": {version}' not in doc and f"schema v{version}" not in doc
        ):
            yield self.finding(
                self.EVENTS_PATH,
                module.tree.body[0].lineno if module.tree.body else 1,
                f"{self.DOC_PATH} never states the current schema "
                f"version {version}; readers cannot tell which schema "
                "the table describes",
            )
