"""Determinism rules: RL001 (random), RL002 (wall clock), RL003 (set order).

These three rules protect the repo's headline guarantee — bit-identical
results for the same seed at any ``--jobs`` count, traced or untraced.
Each encodes one way that guarantee has been (or could be) silently
broken: ambient RNG state, wall-clock reads leaking into simulation
outputs, and iteration order of unordered containers reaching
simulation state or serialized output.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, RuleMeta, register

__all__ = ["NoUnseededRandom", "NoWallClock", "NoOrderingHazard"]


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported dotted module name (``import`` only)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
    return aliases


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class NoUnseededRandom(Rule):
    """RL001: only explicitly seeded RNG instances are allowed.

    Module-level ``random.*`` functions share one ambient, process-wide
    RNG whose state depends on import order and on every other caller —
    across pool workers it silently diverges. All randomness in the
    simulators must flow through a ``random.Random(seed)`` (or
    ``numpy.random.default_rng(seed)``) instance plumbed from the
    experiment config.
    """

    meta = RuleMeta(
        id="RL001",
        name="no-unseeded-random",
        rationale=(
            "The module-level random API is a process-global RNG; any use "
            "breaks bit-identical reproduction across job counts and "
            "platforms. Construct random.Random(seed) instances instead."
        ),
    )

    _ALLOWED_STDLIB = {"Random"}
    _ALLOWED_NUMPY = {"default_rng", "Generator"}

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        random_aliases = {a for a, m in aliases.items() if m == "random"}
        numpy_aliases = {a for a, m in aliases.items() if m == "numpy"}
        numpy_random_aliases = {
            a for a, m in aliases.items() if m == "numpy.random"
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for name in node.names:
                        if name.name not in self._ALLOWED_STDLIB:
                            yield self.finding(
                                module,
                                node,
                                f"'from random import {name.name}' uses the "
                                "process-global RNG; import random.Random "
                                "and seed an instance explicitly",
                            )
                elif node.module == "numpy.random":
                    for name in node.names:
                        if name.name not in self._ALLOWED_NUMPY:
                            yield self.finding(
                                module,
                                node,
                                f"'from numpy.random import {name.name}' uses "
                                "global numpy RNG state; use "
                                "numpy.random.default_rng(seed)",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    parts[0] in random_aliases
                    and len(parts) == 2
                    and parts[1] not in self._ALLOWED_STDLIB
                ):
                    yield self.finding(
                        module,
                        node,
                        f"'{dotted}' calls the process-global RNG; use a "
                        "random.Random(seed) instance",
                    )
                elif (
                    (
                        (parts[0] in numpy_aliases and len(parts) == 3
                         and parts[1] == "random")
                        or (parts[0] in numpy_random_aliases and len(parts) == 2)
                    )
                    and parts[-1] not in self._ALLOWED_NUMPY
                ):
                    yield self.finding(
                        module,
                        node,
                        f"'{dotted}' uses global numpy RNG state; use "
                        "numpy.random.default_rng(seed)",
                    )


@register
class NoWallClock(Rule):
    """RL002: no wall-clock reads outside telemetry timing paths.

    Simulated time is the only clock the simulators may observe. A
    wall-clock read feeding any result makes output depend on host
    speed and scheduling. Telemetry and the grid runner's profiling are
    the sanctioned exceptions (their numbers are *about* wall time and
    never feed back into results).
    """

    meta = RuleMeta(
        id="RL002",
        name="no-wallclock",
        rationale=(
            "Wall-clock reads outside telemetry make results depend on "
            "host speed; simulation code must only observe simulated "
            "cycles."
        ),
        exempt=(
            "src/repro/telemetry/",
            "src/repro/experiments/runner.py",
            # The supervisor's clocks bound task attempts (timeouts,
            # liveness polling); they never feed simulation results.
            "src/repro/experiments/supervisor.py",
            # Fault injection sleeps to simulate a hung worker.
            "src/repro/faults/",
            # The service's clocks bound job deadlines, retry backoff,
            # and drain waits; simulation results never depend on them.
            "src/repro/service/",
            # The perf harness *measures* wall time by design; its
            # numbers describe the simulator and never feed back in.
            "benchmarks/harness.py",
        ),
    )

    _TIME_ATTRS = {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        time_aliases = {a for a, m in aliases.items() if m == "time"}
        datetime_mod_aliases = {a for a, m in aliases.items() if m == "datetime"}
        datetime_classes: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for name in node.names:
                        if name.name in self._TIME_ATTRS:
                            yield self.finding(
                                module,
                                node,
                                f"'from time import {name.name}' reads the "
                                "wall clock; only telemetry may do that",
                            )
                elif node.module == "datetime":
                    for name in node.names:
                        if name.name in {"datetime", "date"}:
                            datetime_classes.add(name.asname or name.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            is_time = (
                parts[0] in time_aliases
                and len(parts) == 2
                and parts[1] in self._TIME_ATTRS
            )
            is_datetime = (
                parts[-1] in self._DATETIME_ATTRS
                and (
                    (parts[0] in datetime_mod_aliases and len(parts) == 3)
                    or (parts[0] in datetime_classes and len(parts) == 2)
                )
            )
            if is_time or is_datetime:
                yield self.finding(
                    module,
                    node,
                    f"'{dotted}' reads the wall clock; simulation code must "
                    "only observe simulated cycles (telemetry is exempt)",
                )


_SET_TYPE_NAMES = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "enumerate", "iter"}
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "frozenset",
    "set",
}


# The set-detection heuristics are shared with the whole-program effect
# inference (repro.analysis.dataflow), which runs them function-scoped,
# so they live at module level rather than on the rule class.
def set_names(tree: ast.AST) -> Set[str]:
    """Names that are (heuristically) bound to set values in ``tree``."""
    names: Set[str] = set()

    def is_set_annotation(annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr in _SET_TYPE_NAMES
        return isinstance(target, ast.Name) and target.id in _SET_TYPE_NAMES

    # Two passes so `b = a | other` after `a = set()` is caught.
    for _ in range(2):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if is_set_annotation(node.annotation) or (
                    node.value is not None and is_set_expr(node.value, names)
                ):
                    names.add(node.target.id)
            elif isinstance(node, ast.arg) and is_set_annotation(
                node.annotation
            ):
                names.add(node.arg)
    return names


def is_set_expr(node: ast.expr, names: Set[str]) -> bool:
    """Whether an expression (heuristically) evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left, names) or is_set_expr(node.right, names)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {
            "set",
            "frozenset",
        }:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and is_set_expr(node.func.value, names)
        ):
            return True
    return False


def ordering_hazards(
    tree: ast.AST, names: Set[str]
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for every unsorted-set iteration."""
    base = (
        "iterating a set has nondeterministic order; wrap the "
        "iterable in sorted(...)"
    )
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_expr(
            node.iter, names
        ):
            yield node.iter, base
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                if is_set_expr(comp.iter, names):
                    yield comp.iter, base
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_CONSUMERS
                and node.args
                and is_set_expr(node.args[0], names)
            ):
                yield node, f"{func.id}() over a set is order-dependent; {base}"
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and is_set_expr(node.args[0], names)
            ):
                yield node, f"str.join over a set is order-dependent; {base}"


@register
class NoOrderingHazard(Rule):
    """RL003: iteration over sets must be sorted.

    ``set``/``frozenset`` iteration order depends on insertion history
    and hash seeding of the value types; when such an iteration feeds
    simulation state or serialized output the run is no longer
    reproducible byte-for-byte. Iterating a *dict* is fine — Python
    dicts preserve insertion order — which is why this rule targets the
    set family only. Wrap the iterable in ``sorted(...)``.
    """

    meta = RuleMeta(
        id="RL003",
        name="no-ordering-hazard",
        rationale=(
            "Set iteration order is not stable across processes and "
            "platforms; simulation/serialization code must sort first. "
            "Scope: the simulation kernel (core, cpu, engine) plus the "
            "modules that serialize results."
        ),
        paths=(
            "src/repro/core/",
            "src/repro/cpu/",
            "src/repro/engine/",
            "src/repro/experiments/",
            "src/repro/workloads/",
        ),
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        names = set_names(module.tree)
        for node, message in ordering_hazards(module.tree, names):
            yield self.finding(module, node, message)
