"""RL004: no exact float equality in fairness/throughput math.

The ``truncated_fairness`` bug (a measured fairness a few ulps above
1.0 rejected by an exact range check) shipped because nothing flagged
exact comparisons on float-valued expressions. This rule flags
``==``/``!=`` where either operand is *statically recognizable* as a
float: a float literal, a true-division result, a ``float(...)`` call,
a ``math`` constant, a name or ``self.<field>`` annotated ``float``.

The detector is deliberately a heuristic — unannotated intermediate
values escape it — but it catches the dominant pattern (comparisons
against float literals and annotated quantities). Exact *sentinel*
comparisons (e.g. ``fairness_target == 0.0`` where 0.0 is an exact,
validated input) are legitimate and should carry an inline
``# repro-lint: disable=RL004 - <reason>`` suppression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, RuleMeta, register

__all__ = ["NoFloatEquality"]

_MATH_FLOAT_CONSTANTS = {"inf", "nan", "pi", "e", "tau"}


def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id == "float"
    if isinstance(annotation, ast.Constant):  # string annotation
        return annotation.value == "float"
    if isinstance(annotation, ast.Subscript):
        # Optional[float] / Union[float, ...] style annotations.
        for child in ast.walk(annotation):
            if isinstance(child, ast.Name) and child.id == "float":
                return True
    return False


@register
class NoFloatEquality(Rule):
    """RL004: use ``math.isclose`` or an explicit tolerance instead."""

    meta = RuleMeta(
        id="RL004",
        name="float-eq",
        rationale=(
            "Exact == / != on floating-point quantities breaks on ulp "
            "noise (the truncated_fairness clamp bug); fairness and "
            "throughput math must compare with math.isclose or an "
            "explicit tolerance, or suppress with a reason for exact "
            "sentinels."
        ),
        paths=(
            "src/repro/core/",
            "src/repro/metrics/",
            "src/repro/experiments/",
        ),
    )

    def _annotated_floats(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.arg) and _is_float_annotation(node.annotation):
                names.add(node.arg)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and _is_float_annotation(node.annotation)
            ):
                names.add(node.target.id)
        return names

    def _float_fields(self, tree: ast.Module) -> Set[str]:
        """Class-level ``x: float`` fields (dataclass style), module-wide."""
        fields: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if (
                    isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                    and _is_float_annotation(statement.annotation)
                ):
                    fields.add(statement.target.id)
        return fields

    def _is_floatish(
        self, node: ast.expr, names: Set[str], fields: Set[str]
    ) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "math"
                and node.attr in _MATH_FLOAT_CONSTANTS
            ):
                return True
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr in fields
            return False
        if isinstance(node, ast.Call):
            return isinstance(node.func, ast.Name) and node.func.id == "float"
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_floatish(node.left, names, fields) or self._is_floatish(
                node.right, names, fields
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_floatish(node.operand, names, fields)
        return False

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        names = self._annotated_floats(module.tree)
        fields = self._float_fields(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_floatish(op, names, fields) for op in operands):
                yield self.finding(
                    module,
                    node,
                    "exact float equality; use math.isclose(...) or an "
                    "explicit tolerance (suppress with a reason for exact "
                    "sentinel values)",
                )
