"""Concurrency rule: RL008 (no unsupervised process pools).

The repo's fault-tolerance guarantees (``docs/ROBUSTNESS.md``) hold
only when parallel simulation flows through the supervised executor in
:mod:`repro.experiments.runner`/:mod:`repro.experiments.supervisor`: a
bare ``multiprocessing.Pool`` has no per-task timeout, no retry, no
crash classification, and one dead worker aborts (or wedges) the whole
sweep. This rule keeps new parallel code from quietly reintroducing
that failure mode.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, Rule, RuleMeta, register

__all__ = ["NoUnsupervisedPool"]

#: Constructors that hand out unsupervised worker pools.
_POOL_CONSTRUCTORS = {
    "Pool",
    "ThreadPool",
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
}

#: Fan-out methods on a pool object (the calls RL008 names explicitly).
_POOL_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "map_async",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
}

#: Modules the constructors live in (``module.Pool(...)`` spellings).
_POOL_MODULES = {
    "multiprocessing",
    "multiprocessing.pool",
    "multiprocessing.dummy",
    "concurrent.futures",
}


@register
class NoUnsupervisedPool(Rule):
    """RL008: parallel fan-out must go through the supervised runner.

    Flags constructions of ``multiprocessing.Pool``-family objects and
    ``concurrent.futures`` executors, plus ``.map``/``.imap``/... calls
    on names bound to them. The supervised executor (timeouts, retries,
    crash detection, drain-on-interrupt) is the only sanctioned way to
    fan simulation tasks out across processes.
    """

    meta = RuleMeta(
        id="RL008",
        name="no-unsupervised-pool",
        rationale=(
            "A bare process pool has no timeout, retry, or crash "
            "handling: one bad task kills or wedges the sweep and "
            "finished work is lost. Fan out through "
            "repro.experiments.runner.parallel_map (or the Supervisor) "
            "instead."
        ),
        paths=("src/repro/",),
        exempt=(
            # The supervised executor itself: parallel_map and the
            # process-per-task supervisor it is built on.
            "src/repro/experiments/runner.py",
            "src/repro/experiments/supervisor.py",
        ),
    )

    def _constructor_name(
        self, node: ast.Call, pool_modules: Set[str], pool_names: Set[str]
    ) -> Optional[str]:
        """The pool-constructor name if ``node`` builds a pool."""
        func = node.func
        if isinstance(func, ast.Name) and func.id in pool_names:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in _POOL_CONSTRUCTORS:
            parts = []
            target: ast.AST = func.value
            while isinstance(target, ast.Attribute):
                parts.append(target.attr)
                target = target.value
            if isinstance(target, ast.Name):
                parts.append(target.id)
                dotted = ".".join(reversed(parts))
                if dotted in pool_modules:
                    return func.attr
        return None

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # Local spellings of the pool modules and directly imported
        # constructors (``from multiprocessing import Pool as P``).
        pool_modules: Set[str] = set()
        pool_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name in _POOL_MODULES:
                        pool_modules.add(name.asname or name.name)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module in _POOL_MODULES:
                    for name in node.names:
                        if name.name in _POOL_CONSTRUCTORS:
                            pool_names.add(name.asname or name.name)

        # Pass 1: constructor calls are findings, and any name they are
        # bound to (assignment or ``with ... as``) becomes a pool name.
        bound: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                constructor = self._constructor_name(
                    node, pool_modules, pool_names
                )
                if constructor is not None:
                    yield self.finding(
                        module,
                        node,
                        f"unsupervised {constructor}(): fan out through "
                        "repro.experiments.runner.parallel_map (timeouts, "
                        "retries, crash recovery) instead",
                    )
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if self._constructor_name(node.value, pool_modules, pool_names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and self._constructor_name(
                            item.context_expr, pool_modules, pool_names
                        )
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        bound.add(item.optional_vars.id)

        # Pass 2: fan-out method calls on bound pool names.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _POOL_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in bound
            ):
                yield self.finding(
                    module,
                    node,
                    f"unsupervised pool.{func.attr}() has no timeout, "
                    "retry, or crash handling; use "
                    "repro.experiments.runner.parallel_map",
                )
