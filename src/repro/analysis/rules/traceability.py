"""RL005: paper-equation traceability.

Two checks, both driven by :mod:`repro.analysis.eqmap`:

* per docstring — every ``Eq. N`` reference must name an equation that
  PAPER.md actually cites (the registry); a typo'd number is a broken
  link to the paper;
* project-wide — every registry equation must be **claimed** by exactly
  one function (a docstring whose first line is ``Eq. N: ...``). Zero
  claims means part of the paper's math has no canonical
  implementation; two claims means the traceability table can no longer
  answer "where is Eq. N implemented?".

The same scan renders the Eq.->function table shown by
``repro lint --eq-table`` and embedded in docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectInfo, Rule, RuleMeta, register

__all__ = ["EquationTraceability"]


@register
class EquationTraceability(Rule):
    """RL005: Eq. references resolve; each equation has one owner."""

    meta = RuleMeta(
        id="RL005",
        name="paper-eq-traceability",
        rationale=(
            "Docstring Eq. references are the reproduction's audit trail "
            "back to the paper; they must point at real equations and "
            "every equation must have exactly one canonical "
            "implementation."
        ),
    )

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        table = project.eq_table
        if table is None:
            # No PAPER.md available (e.g. linting a bare checkout subset);
            # nothing to cross-reference against.
            return
        known = set(table.registry)
        for mention in table.mentions:
            if mention.number not in known:
                yield self.finding(
                    mention.relpath,
                    mention.line,
                    f"docstring references Eq. {mention.number}, which "
                    "PAPER.md does not cite (registry: "
                    f"{min(known)}-{max(known)})" if known else
                    f"docstring references Eq. {mention.number}, but "
                    "PAPER.md cites no equations",
                )
        for claim in table.claims:
            if claim.number not in known:
                yield self.finding(
                    claim.relpath,
                    claim.line,
                    f"{claim.qualname} claims Eq. {claim.number}, which "
                    "PAPER.md does not cite",
                )
        for number in sorted(known):
            claimants = table.claimants(number)
            if not claimants:
                yield self.finding(
                    "PAPER.md",
                    1,
                    f"Eq. {number} ({table.registry[number]}) has no "
                    "canonical implementation: no docstring starts with "
                    f"'Eq. {number}:'",
                )
            elif len(claimants) > 1:
                others = ", ".join(
                    f"{c.qualname} ({c.location})" for c in claimants
                )
                for claimant in claimants:
                    yield self.finding(
                        claimant.relpath,
                        claimant.line,
                        f"Eq. {number} is claimed by {len(claimants)} "
                        f"functions ({others}); exactly one docstring may "
                        f"start with 'Eq. {number}:'",
                    )
