"""Rule base class, per-rule configuration, and the rule registry.

A rule is a small object with:

* :attr:`Rule.meta` — id, name, rationale, default severity, and the
  path *scope* it applies to (prefix lists, not globs: a file is in
  scope when its repo-relative path starts with any ``paths`` entry and
  none of the ``exempt`` entries);
* :meth:`Rule.check_module` — per-file pass over a parsed AST;
* :meth:`Rule.finalize` — optional project-wide pass that runs after
  every module was checked (used by cross-file rules such as the
  equation-traceability rule RL005).

Rules register themselves at import time via :func:`register`; the
engine imports :mod:`repro.analysis.rules` for the side effect and then
asks :func:`all_rules` for the active set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from repro.analysis.callgraph import CallGraph, ModuleSummary
    from repro.analysis.dataflow import Taint
    from repro.analysis.eqmap import EqTable
    from repro.analysis.suppressions import Suppressions

from repro.analysis.findings import Finding, Severity
from repro.errors import ConfigurationError

__all__ = [
    "RuleMeta",
    "ModuleInfo",
    "ProjectInfo",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
]


@dataclass(frozen=True)
class RuleMeta:
    """Static description and configuration of one rule."""

    id: str  #: stable id, e.g. ``"RL001"``
    name: str  #: short kebab-case name, e.g. ``"no-unseeded-random"``
    rationale: str  #: one paragraph: which repo guarantee the rule protects
    severity: Severity = Severity.ERROR
    #: Repo-relative path prefixes the rule applies to.
    paths: Tuple[str, ...] = ("src/repro/",)
    #: Repo-relative path prefixes exempt from the rule.
    exempt: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether a repo-relative POSIX path is in this rule's scope."""
        if not any(relpath.startswith(prefix) for prefix in self.paths):
            return False
        return not any(relpath.startswith(prefix) for prefix in self.exempt)


@dataclass
class ModuleInfo:
    """One parsed source file handed to each rule's per-module pass."""

    relpath: str  #: repo-relative POSIX path
    tree: ast.Module
    source: str

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class ProjectInfo:
    """Everything the engine learned, for cross-file ``finalize`` passes.

    ``modules`` holds the files parsed *this run* — on a warm-cache run
    that may be a subset of the project (or empty). Whole-program rules
    therefore go through :meth:`find_module` (which falls back to disk)
    and :attr:`summaries` (which always covers every discovered file),
    never through ``modules`` directly.
    """

    modules: List[ModuleInfo] = field(default_factory=list)
    #: Equation traceability table (None when PAPER.md is unavailable).
    eq_table: "Optional[EqTable]" = None
    #: Repository root for on-demand file loading (None = in-memory only).
    repo_root: "Optional[Path]" = None
    #: relpath -> whole-program summary, for every discovered file.
    summaries: "Dict[str, ModuleSummary]" = field(default_factory=dict)
    #: relpath -> parsed suppression pragmas, for every discovered file.
    suppressions: "Dict[str, Suppressions]" = field(default_factory=dict)
    #: In-memory documentation overrides (tests); falls back to disk.
    docs: Dict[str, str] = field(default_factory=dict)
    _module_cache: Dict[str, Optional[ModuleInfo]] = field(
        default_factory=dict, repr=False
    )
    _graph: "Optional[CallGraph]" = field(default=None, repr=False)
    _taints: "Optional[Dict[str, Dict[str, Taint]]]" = field(
        default=None, repr=False
    )

    def find_module(self, relpath: str) -> Optional[ModuleInfo]:
        """A parsed module by repo-relative path, loading lazily.

        Prefers modules parsed this run; otherwise reads + parses from
        ``repo_root``. Returns None when the file does not exist (or
        fails to parse), so rules can degrade gracefully.
        """
        if relpath in self._module_cache:
            return self._module_cache[relpath]
        found: Optional[ModuleInfo] = None
        for module in self.modules:
            if module.relpath == relpath:
                found = module
                break
        if found is None and self.repo_root is not None:
            path = self.repo_root / relpath
            if path.is_file():
                try:
                    source = path.read_text()
                    found = ModuleInfo(
                        relpath=relpath,
                        tree=ast.parse(source, filename=str(path)),
                        source=source,
                    )
                except (OSError, SyntaxError):
                    found = None
        self._module_cache[relpath] = found
        return found

    def read_text(self, relpath: str) -> Optional[str]:
        """A text file (e.g. docs) by repo-relative path, or None."""
        if relpath in self.docs:
            return self.docs[relpath]
        if self.repo_root is not None:
            path = self.repo_root / relpath
            if path.is_file():
                try:
                    return path.read_text()
                except OSError:
                    return None
        return None

    def graph(self) -> "CallGraph":
        """The resolved project call graph (built lazily, then cached)."""
        if self._graph is None:
            from repro.analysis.callgraph import build_graph, summarize_module

            if not self.summaries:
                self.summaries = {
                    module.relpath: summarize_module(module)
                    for module in self.modules
                }
            self._graph = build_graph(self.summaries)
        return self._graph

    def taints(self) -> "Dict[str, Dict[str, Taint]]":
        """Inferred effect sets for every function (unfiltered seeds)."""
        if self._taints is None:
            from repro.analysis.dataflow import propagate

            graph = self.graph()
            seeds = {
                qualname: node.effects
                for qualname, node in graph.functions.items()
                if node.effects
            }
            self._taints = propagate(graph, seeds, include_refs=False)
        return self._taints


class Rule:
    """Base class for lint rules; subclasses set ``meta`` and override."""

    meta: RuleMeta

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Per-file pass. Default: no findings."""
        return iter(())

    def finalize(self, project: ProjectInfo) -> Iterator[Finding]:
        """Cross-file pass, after every module was checked. Default: none."""
        return iter(())

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def finding(
        self,
        module_or_path: "ModuleInfo | str",
        node_or_line: "ast.AST | int",
        message: str,
        col: int = 0,
    ) -> Finding:
        """Build a Finding at an AST node (or explicit line) of a module."""
        path = (
            module_or_path
            if isinstance(module_or_path, str)
            else module_or_path.relpath
        )
        if isinstance(node_or_line, int):
            line = node_or_line
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.meta.id,
            message=message,
            severity=self.meta.severity,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not getattr(rule, "meta", None):
        raise ConfigurationError(f"rule {rule_cls.__name__} has no meta")
    if rule.meta.id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule.meta.id}")
    _REGISTRY[rule.meta.id] = rule
    return rule_cls


def _ensure_loaded() -> None:
    # Importing the rules package registers every built-in rule.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def select_rules(
    select: Iterable[str] = (), disable: Iterable[str] = ()
) -> List[Rule]:
    """The active rule set after ``--select`` / ``--disable`` filtering."""
    chosen = all_rules()
    select = tuple(select)
    disable = tuple(disable)
    for rule_id in (*select, *disable):
        get_rule(rule_id)  # raise on unknown ids
    if select:
        chosen = [rule for rule in chosen if rule.meta.id in select]
    if disable:
        chosen = [rule for rule in chosen if rule.meta.id not in disable]
    return chosen


# Re-exported for rule modules that want lightweight AST walking without
# repeating the boilerplate of a NodeVisitor subclass.
def walk_functions(
    tree: ast.Module,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


NodePredicate = Callable[[ast.AST], bool]
