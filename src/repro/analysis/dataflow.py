"""Effect inference: direct effects per function, then fixed-point taint.

The effect lattice is a flat powerset over :data:`EFFECT_KINDS`:

* ``rng``         -- process-global RNG state (RL001's sources);
* ``wallclock``   -- wall-clock reads (RL002's sources);
* ``set_iter``    -- unsorted set iteration (RL003's sources);
* ``file_io``     -- filesystem access;
* ``network``     -- socket / HTTP access;
* ``global_mut``  -- mutation of a module-level binding.

:func:`function_effects` detects the *direct* effects of one function
body (reusing the per-file rules' detection heuristics, scoped to the
function instead of the module). :func:`propagate` then closes the
relation over the call graph: breadth-first over reverse call edges
from every directly-effectful function, so a function's inferred
effect set is the union of its own and everything it can reach. Each
propagated effect carries a deterministic *witness chain* — the
shortest call path to the concrete source line, ties broken by sorted
qualified name — which is what lets RL009 report ``engine.run ->
utils.jitter -> random.random() (src/repro/utils.py:12)`` instead of a
bare verdict.

Join is set union and the call graph is finite, so the breadth-first
closure IS the fixed point: one visit per (function, kind) pair,
``O(edges x kinds)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    DirectEffect,
    GlobalMutation,
    ModuleSummary,
)

__all__ = [
    "EFFECT_KINDS",
    "DETERMINISM_KINDS",
    "EFFECT_RULES",
    "Taint",
    "function_effects",
    "propagate",
    "effects_to_json",
]

#: Every effect kind the analysis infers, in report order.
EFFECT_KINDS = (
    "rng",
    "wallclock",
    "set_iter",
    "file_io",
    "network",
    "global_mut",
)

#: The kinds that break bit-identical reproduction (RL009's concern).
DETERMINISM_KINDS = ("rng", "wallclock", "set_iter")

#: Effect kind -> the per-file rule that polices *direct* uses. A source
#: whose direct finding is inline-suppressed is sanctioned, so it does
#: not seed whole-program taint either.
EFFECT_RULES = {"rng": "RL001", "wallclock": "RL002", "set_iter": "RL003"}

_ALLOWED_STDLIB_RANDOM = {"Random", "SystemRandom"}
_ALLOWED_NUMPY_RANDOM = {"default_rng", "Generator"}
_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
_OS_FILE_ATTRS = {
    "open",
    "remove",
    "unlink",
    "rename",
    "replace",
    "makedirs",
    "mkdir",
    "rmdir",
    "listdir",
    "scandir",
    "walk",
    "stat",
    "write",
    "read",
}
_PATH_METHODS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "mkdir",
    "rmdir",
    "unlink",
    "rename",
    "replace",
    "touch",
    "glob",
    "rglob",
    "iterdir",
    "symlink_to",
    "hardlink_to",
}
_FILE_MODULES = {"shutil", "tempfile"}
_NETWORK_MODULES = {
    "socket",
    "urllib",
    "http",
    "requests",
    "ftplib",
    "smtplib",
}


@dataclass(frozen=True)
class Taint:
    """One inferred effect of a function, with its witness chain.

    ``chain`` runs from the tainted function to the source function,
    both inclusive; ``chain == (fn,)`` means the effect is direct.
    """

    kind: str
    source: str  #: fully-qualified source function
    line: int  #: line of the concrete effect inside the source
    detail: str
    chain: Tuple[str, ...]

    @property
    def direct(self) -> bool:
        return len(self.chain) == 1


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def function_effects(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    summary: ModuleSummary,
    mutations: Sequence[GlobalMutation] = (),
) -> List[DirectEffect]:
    """Direct effects of one function body (module context from summary).

    ``summary`` only needs its import tables populated; the function
    nodes may still be under construction.
    """
    # Imported at call time: the rules package imports the
    # whole-program rules, which import this module — importing
    # rules.determinism at module level would close that cycle.
    from repro.analysis.rules.determinism import ordering_hazards, set_names

    effects: List[DirectEffect] = []

    aliases = summary.imports
    random_aliases = {a for a, m in aliases.items() if m == "random"}
    numpy_aliases = {a for a, m in aliases.items() if m == "numpy"}
    numpy_random_aliases = {a for a, m in aliases.items() if m == "numpy.random"}
    time_aliases = {a for a, m in aliases.items() if m == "time"}
    datetime_aliases = {a for a, m in aliases.items() if m == "datetime"}
    file_aliases = {a for a, m in aliases.items() if m in _FILE_MODULES}
    os_aliases = {a for a, m in aliases.items() if m == "os"}
    network_aliases = {
        a
        for a, m in aliases.items()
        if m.split(".")[0] in _NETWORK_MODULES
    }

    # Names from-imported straight onto nondeterministic callables:
    # ``from random import random`` / ``from time import monotonic``.
    rng_names = {
        local
        for local, (mod, name) in summary.from_imports.items()
        if (mod == "random" and name not in _ALLOWED_STDLIB_RANDOM)
        or (mod == "numpy.random" and name not in _ALLOWED_NUMPY_RANDOM)
    }
    clock_names = {
        local
        for local, (mod, name) in summary.from_imports.items()
        if mod == "time" and name in _TIME_ATTRS
    }
    datetime_classes = {
        local
        for local, (mod, name) in summary.from_imports.items()
        if mod == "datetime" and name in {"datetime", "date"}
    }

    all_nodes = [node for stmt in fn.body for node in ast.walk(stmt)]

    for node in all_nodes:
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                parts[0] in random_aliases
                and len(parts) == 2
                and parts[1] not in _ALLOWED_STDLIB_RANDOM
            ):
                effects.append(DirectEffect("rng", node.lineno, dotted))
            elif (
                (
                    parts[0] in numpy_aliases
                    and len(parts) == 3
                    and parts[1] == "random"
                )
                or (parts[0] in numpy_random_aliases and len(parts) == 2)
            ) and parts[-1] not in _ALLOWED_NUMPY_RANDOM:
                effects.append(DirectEffect("rng", node.lineno, dotted))
            elif (
                parts[0] in time_aliases
                and len(parts) == 2
                and parts[1] in _TIME_ATTRS
            ):
                effects.append(DirectEffect("wallclock", node.lineno, dotted))
            elif parts[-1] in _DATETIME_ATTRS and (
                (parts[0] in datetime_aliases and len(parts) == 3)
                or (parts[0] in datetime_classes and len(parts) == 2)
            ):
                effects.append(DirectEffect("wallclock", node.lineno, dotted))
            elif parts[0] in os_aliases and (
                (len(parts) == 2 and parts[1] in _OS_FILE_ATTRS)
                or (len(parts) == 3 and parts[1] == "path" and parts[2] == "exists")
            ):
                effects.append(DirectEffect("file_io", node.lineno, dotted))
            elif parts[0] in file_aliases and len(parts) >= 2:
                effects.append(DirectEffect("file_io", node.lineno, dotted))
            elif parts[0] in network_aliases and len(parts) >= 2:
                effects.append(DirectEffect("network", node.lineno, dotted))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in rng_names:
                effects.append(DirectEffect("rng", node.lineno, node.id))
            elif node.id in clock_names:
                effects.append(DirectEffect("wallclock", node.lineno, node.id))
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                effects.append(DirectEffect("file_io", node.lineno, "open()"))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_METHODS
            ):
                effects.append(
                    DirectEffect("file_io", node.lineno, f".{node.func.attr}()")
                )

    names = set_names(fn)
    for stmt in fn.body:
        for node, _message in ordering_hazards(stmt, names):
            effects.append(
                DirectEffect("set_iter", node.lineno, "set iteration")
            )

    for mutation in mutations:
        effects.append(
            DirectEffect(
                "global_mut", mutation.line, f"{mutation.name}{mutation.how}"
            )
        )

    unique = sorted(set(effects), key=lambda e: (e.kind, e.line, e.detail))
    return unique


def propagate(
    graph: CallGraph,
    seeds: Mapping[str, Sequence[DirectEffect]],
    include_refs: bool = False,
) -> Dict[str, Dict[str, Taint]]:
    """Close the effect relation over the call graph.

    ``seeds`` maps function qualnames to their (possibly filtered)
    direct effects. Returns, for every function that has or reaches an
    effect, one :class:`Taint` per effect kind with the shortest
    deterministic witness chain.
    """
    reverse = graph.callers_of(include_refs=include_refs)
    result: Dict[str, Dict[str, Taint]] = {}
    frontier: List[Tuple[str, str]] = []
    for qualname in sorted(seeds):
        if qualname not in graph.functions:
            continue
        per_kind: Dict[str, Taint] = result.setdefault(qualname, {})
        for effect in sorted(
            seeds[qualname], key=lambda e: (e.kind, e.line, e.detail)
        ):
            if effect.kind not in per_kind:
                per_kind[effect.kind] = Taint(
                    kind=effect.kind,
                    source=qualname,
                    line=effect.line,
                    detail=effect.detail,
                    chain=(qualname,),
                )
                frontier.append((qualname, effect.kind))
    frontier.sort()
    while frontier:
        next_frontier: List[Tuple[str, str]] = []
        for qualname, kind in frontier:
            taint = result[qualname][kind]
            for caller in reverse.get(qualname, ()):
                per_kind = result.setdefault(caller, {})
                if kind not in per_kind:
                    per_kind[kind] = Taint(
                        kind=kind,
                        source=taint.source,
                        line=taint.line,
                        detail=taint.detail,
                        chain=(caller, *taint.chain),
                    )
                    next_frontier.append((caller, kind))
        frontier = sorted(next_frontier)
    return result


def effects_to_json(
    graph: CallGraph, taints: Mapping[str, Mapping[str, Taint]]
) -> dict:
    """The ``--graph`` dump: call graph plus inferred effect sets."""
    dump = graph.to_json()
    for qualname, per_kind in sorted(taints.items()):
        entry = dump["functions"].get(qualname)
        if entry is None:
            continue
        entry["effects"] = {
            kind: {
                "source": taint.source,
                "line": taint.line,
                "detail": taint.detail,
                "chain": list(taint.chain),
            }
            for kind, taint in sorted(per_kind.items())
        }
    dump["stats"]["effectful_functions"] = len(taints)
    return dump
