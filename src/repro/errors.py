"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A configuration value is out of its legal range or inconsistent."""


class WorkloadError(ReproError):
    """A workload definition is invalid (unknown benchmark, bad stream...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""
