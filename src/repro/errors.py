"""Exception types shared across the :mod:`repro` package.

The bottom half is the *failure taxonomy* of the supervised grid
executor (see ``docs/ROBUSTNESS.md``): every way a grid task can fail
maps to exactly one :class:`TaskError` subclass, so retry policies,
failure manifests, and telemetry all speak the same vocabulary.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "SimulationError",
    "TaskError",
    "TaskTimeout",
    "WorkerCrash",
    "InvariantViolation",
    "CacheCorruption",
    "GridExecutionError",
    "GridInterrupted",
    "FAILURE_REASONS",
    "classify_failure",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A configuration value is out of its legal range or inconsistent."""


class WorkloadError(ReproError):
    """A workload definition is invalid (unknown benchmark, bad stream...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


# ---------------------------------------------------------------------------
# Failure taxonomy of the supervised grid executor
# ---------------------------------------------------------------------------


class TaskError(ReproError):
    """One supervised grid task failed (base of the failure taxonomy).

    ``reason`` is the stable machine-readable classification used in
    failure manifests and ``task_retry``/``task_failed`` trace events;
    each concrete subclass pins one value.
    """

    reason: str = "error"


class TaskTimeout(TaskError):
    """A task exceeded its wall-clock budget and was terminated.

    The timeout protects the *supervisor* from hung workers; it never
    feeds into simulation results (which observe only simulated
    cycles), so a timed-out-and-retried task still produces bit-
    identical output.
    """

    reason = "timeout"


class WorkerCrash(TaskError):
    """A worker process died without reporting a result.

    Covers hard crashes (segfault, ``os._exit``, OOM kill) -- anything
    that would surface as ``BrokenProcessPool``/a nonzero exitcode. The
    supervisor respawns a fresh process for the retry.
    """

    reason = "crash"


class InvariantViolation(TaskError):
    """A task returned a result that violates a structural invariant
    (non-finite floats, impossible counters)."""

    reason = "invariant"


class CacheCorruption(ReproError):
    """An on-disk cache entry held unreadable or mismatched bytes.

    Never fatal on its own: the corrupt file is quarantined (renamed to
    ``*.quarantine``) and the entry recomputed; this type exists so the
    event can be reported with the rest of the taxonomy.
    """


#: Stable failure classifications (manifest + telemetry vocabulary).
FAILURE_REASONS = frozenset(("timeout", "crash", "invariant", "error"))


def classify_failure(error: BaseException) -> str:
    """The taxonomy reason string for an arbitrary task exception."""
    if isinstance(error, TaskError):
        return error.reason
    return "error"


class GridExecutionError(ReproError):
    """A grid execution ended with failed tasks (``--on-failure=abort``).

    Carries the partial :class:`~repro.experiments.runner.GridOutcome`
    (everything that did complete, plus the failure manifest) so
    callers can persist finished work even when aborting.
    """

    def __init__(self, message: str, outcome: Optional[object] = None) -> None:
        super().__init__(message)
        self.outcome = outcome


class GridInterrupted(GridExecutionError):
    """A grid execution was interrupted (SIGINT/SIGTERM) and drained.

    In-flight tasks were allowed to finish and were journaled; the
    carried outcome holds everything completed before the interrupt.
    """
