"""Job specs: what one service request asks the simulator to compute.

A job is one :func:`repro.experiments.runner.compute_pair` cell -- a
benchmark pair evaluated at a set of fairness levels under one
:class:`~repro.experiments.common.EvalConfig` -- plus service metadata
(the submitting tenant, an optional deadline). Specs are validated at
the HTTP boundary, so everything past admission operates on typed,
already-checked values.

Job identity is *content-addressed*: :func:`job_id` hashes the tenant,
the pair, every config field, and the simulator code version. Two
identical submissions are one job (idempotent POST), and the id doubles
as the journal key, so a restarted service recognizes every job it ever
accepted. The computation itself dedupes one level deeper through the
result cache, which ignores the tenant -- two tenants asking for the
same cell share the simulation but keep separate job records.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, fields, replace
from typing import Mapping, Optional

from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.common import EvalConfig
from repro.workloads.pairs import BenchmarkPair
from repro.workloads.spec2000 import get_profile

__all__ = [
    "JOB_STATES",
    "Job",
    "JobSpec",
    "job_id",
    "parse_job_spec",
]

#: Every state a job record can be in. ``rejected`` and ``expired`` are
#: terminal without execution; ``cached`` is terminal via dedupe.
JOB_STATES = frozenset(
    (
        "queued",
        "dispatched",
        "completed",
        "failed",
        "cached",
        "expired",
        "rejected",
    )
)

_TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Base configs selectable by the spec's ``scale`` field.
_SCALES = {
    "default": EvalConfig,
    "paper": EvalConfig.paper_scale,
    "quick": EvalConfig.quick,
}

#: EvalConfig fields a spec may override. ``fairness_levels`` arrives
#: as a JSON array; everything else is a scalar of the field's type.
_CONFIG_FIELDS = frozenset(field.name for field in fields(EvalConfig))


@dataclass(frozen=True)
class JobSpec:
    """One validated request: a (tenant, pair, config, deadline) tuple."""

    tenant: str
    pair: BenchmarkPair
    config: EvalConfig
    #: Seconds from acceptance to completion; propagates down to the
    #: supervisor's per-attempt timeout. None = no deadline.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not _TENANT_RE.match(self.tenant):
            raise ConfigurationError(
                "tenant must be 1-64 characters of [A-Za-z0-9_-], "
                f"got {self.tenant!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive seconds")
        for benchmark in (self.pair.first, self.pair.second):
            try:
                get_profile(benchmark)
            except WorkloadError as error:
                raise ConfigurationError(str(error)) from error

    def to_json(self) -> dict:
        """The spec as JSON-encodable primitives (journal/API echo).

        The shape round-trips through :func:`parse_job_spec` -- the
        restart path re-parses journaled specs through the same
        validator that admitted them.
        """
        config = {
            field.name: _jsonable_field(getattr(self.config, field.name))
            for field in fields(self.config)
        }
        config["policy_params"] = dict(self.config.policy_params)
        return {
            "tenant": self.tenant,
            "pair": self.pair.label,
            "scale": "default",
            "config": config,
            "deadline_s": self.deadline_s,
        }


def _jsonable_field(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonable_field(item) for item in value]
    return value


def job_id(spec: JobSpec, code_version: str) -> str:
    """Content address of one job under one simulator version."""
    payload = repr(
        (
            "repro-service-job",
            code_version,
            spec.tenant,
            spec.pair.first,
            spec.pair.second,
            tuple(
                (field.name, repr(getattr(spec.config, field.name)))
                for field in fields(spec.config)
            ),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _require(value: object, kind: type, what: str) -> object:
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ConfigurationError(
            f"{what} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _parse_config(scale: str, overrides: Mapping) -> EvalConfig:
    if scale not in _SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    config = _SCALES[scale]()
    if not overrides:
        return config
    unknown = set(overrides) - _CONFIG_FIELDS
    if unknown:
        raise ConfigurationError(
            f"unknown config fields {sorted(unknown)}; "
            f"choose from {sorted(_CONFIG_FIELDS)}"
        )
    cleaned = dict(overrides)
    if "fairness_levels" in cleaned:
        levels = cleaned["fairness_levels"]
        if not isinstance(levels, (list, tuple)) or not all(
            isinstance(level, (int, float)) and not isinstance(level, bool)
            for level in levels
        ):
            raise ConfigurationError(
                "fairness_levels must be an array of numbers"
            )
        cleaned["fairness_levels"] = tuple(float(level) for level in levels)
    if "policy_params" in cleaned:
        params = cleaned["policy_params"]
        if not isinstance(params, Mapping):
            raise ConfigurationError(
                "policy_params must be an object of name -> number"
            )
        cleaned["policy_params"] = tuple(
            sorted((str(name), float(value)) for name, value in params.items())
        )
    try:
        return replace(config, **cleaned)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"invalid config override: {error}") from error


def parse_job_spec(payload: object) -> JobSpec:
    """Validate one submission body into a :class:`JobSpec`.

    Raises :class:`~repro.errors.ConfigurationError` with a
    client-presentable message for anything malformed; nothing
    downstream of admission re-validates.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError("job spec must be a JSON object")
    known = {"tenant", "pair", "scale", "config", "deadline_s"}
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"unknown job spec fields {sorted(unknown)}; "
            f"choose from {sorted(known)}"
        )
    tenant = str(_require(payload.get("tenant"), str, "tenant"))
    pair_text = str(_require(payload.get("pair"), str, "pair"))
    first, sep, second = pair_text.partition(":")
    if not sep or not first or not second:
        raise ConfigurationError(
            f"pair must look like 'first:second', got {pair_text!r}"
        )
    scale = payload.get("scale", "quick")
    _require(scale, str, "scale")
    overrides = payload.get("config", {})
    if overrides is None:
        overrides = {}
    if not isinstance(overrides, Mapping):
        raise ConfigurationError("config must be a JSON object of overrides")
    deadline = payload.get("deadline_s")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ConfigurationError("deadline_s must be a number of seconds")
        deadline = float(deadline)
    return JobSpec(
        tenant=tenant,
        pair=BenchmarkPair(first, second),
        config=_parse_config(str(scale), overrides),
        deadline_s=deadline,
    )


@dataclass
class Job:
    """One accepted job's live record (the service's unit of state)."""

    id: str
    spec: JobSpec
    state: str = "queued"
    #: Human-presentable annotation for the current state (failure
    #: reason, "result cache"/"journal" provenance of a cached result).
    detail: Optional[str] = None
    #: Execution attempts observed so far (retries increment this).
    attempts: int = 0
    #: The finished PairResult (completed/cached states only). Held
    #: in memory for serving; durability lives in the journal/cache.
    result: object = None
    #: Monotonic deadline for queued/dispatched jobs (None = none).
    expires_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ConfigurationError(
                f"unknown job state {self.state!r}; "
                f"choose from {sorted(JOB_STATES)}"
            )

    @property
    def terminal(self) -> bool:
        return self.state in (
            "completed",
            "failed",
            "cached",
            "expired",
            "rejected",
        )

    def to_json(self) -> dict:
        """Status-endpoint view (never includes the result payload)."""
        return {
            "job": self.id,
            "tenant": self.spec.tenant,
            "pair": self.spec.pair.label,
            "state": self.state,
            "detail": self.detail,
            "attempts": self.attempts,
            "terminal": self.terminal,
        }
