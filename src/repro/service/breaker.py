"""A counter-based circuit breaker over pool dispatch outcomes.

When the worker pool starts failing *environmentally* -- crash storms,
wedged tasks hitting timeouts -- continuing to dispatch burns retry
budgets, churns worker respawns, and turns every queued job into a slow
failure. The breaker watches the rolling window of recent attempt
outcomes and, past a failure threshold, *opens*: dispatch stops, queued
jobs wait, and the service degrades to cache-only serving (submissions
that dedupe to a cached result still answer instantly; everything else
is told to retry later).

The breaker is deliberately clocked by *events*, not wall time: it
counts dispatch outcomes and pump cycles. Chaos tests can therefore
assert exact open/half-open/close sequences -- a wall-clock cooldown
would make the trip deterministic but the recovery racy.

States follow the classic pattern:

* ``closed`` -- normal dispatch; outcomes feed the window.
* ``open`` -- no dispatch for ``cooldown`` pump cycles.
* ``half_open`` -- one probe task may dispatch; its success closes the
  breaker (window cleared), its failure re-opens it.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.telemetry import RUNNER as _TRACE_CATEGORY
from repro.telemetry import current_sink
from repro.telemetry.events import breaker_event

__all__ = ["CircuitBreaker"]

#: Outcome reasons that count as environmental failures. An
#: ``invariant`` failure is the *simulation* misbehaving, not the
#: environment; it must not trip the breaker (and ``error`` failures
#: are the task's own exception -- deterministic, not environmental).
_TRIP_REASONS = frozenset(("crash", "timeout"))


class CircuitBreaker:
    """Trips open on a burst of crash/timeout outcomes.

    ``window`` bounds how many recent outcomes are remembered;
    ``threshold`` failures within it open the breaker; ``cooldown``
    pump cycles later one probe is allowed through (half-open).
    """

    def __init__(
        self, *, window: int = 8, threshold: int = 4, cooldown: int = 10
    ) -> None:
        if window < 1 or threshold < 1 or cooldown < 1:
            raise ConfigurationError(
                "breaker window, threshold, and cooldown must be >= 1"
            )
        if threshold > window:
            raise ConfigurationError(
                "breaker threshold cannot exceed its window"
            )
        self.window = window
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self._outcomes: deque = deque(maxlen=window)
        self._cooldown_left = 0
        self._probe_in_flight = False
        #: state-change history (state names), for tests and /v1/stats
        self.transitions: list = []

    @property
    def failures(self) -> int:
        """Environmental failures currently inside the window."""
        return sum(1 for reason in self._outcomes if reason in _TRIP_REASONS)

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append(state)
        sink = current_sink()
        if sink.wants(_TRACE_CATEGORY):
            sink.emit(breaker_event(state, self.failures))

    # -- dispatch gating ----------------------------------------------------

    def allows_dispatch(self) -> bool:
        """May the dispatcher hand the pool another task right now?"""
        if self.state == "closed":
            return True
        if self.state == "half_open":
            return not self._probe_in_flight
        return False

    def on_dispatch(self) -> None:
        """A task was just handed to the pool."""
        if self.state == "half_open":
            self._probe_in_flight = True

    def on_cycle(self) -> None:
        """One dispatcher pump cycle elapsed (the breaker's clock)."""
        if self.state == "open":
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self._probe_in_flight = False
                self._transition("half_open")

    # -- outcome feedback ---------------------------------------------------

    def record(self, reason: Optional[str]) -> None:
        """Feed one attempt outcome (None = success) back in."""
        failed = reason in _TRIP_REASONS
        if self.state == "half_open":
            self._probe_in_flight = False
            if failed:
                self._open()
            else:
                self._outcomes.clear()
                self._transition("closed")
            return
        self._outcomes.append(reason if failed else "ok")
        if self.state == "closed" and self.failures >= self.threshold:
            self._open()

    def _open(self) -> None:
        self._cooldown_left = self.cooldown
        # Transition before clearing so the trace event reports the
        # failure count that actually tripped the breaker.
        self._transition("open")
        self._outcomes.clear()
