"""Durable job state: the service's checkpoint journal.

Every accepted job and every outcome is journaled in the grid
checkpoint format (:mod:`repro.experiments.checkpoint`): one fsync'd
JSONL line per record, a fingerprint header, base64-pickled payloads so
results round-trip bit-identically. A service killed at *any* instant
restarts from its journal with nothing lost but the in-flight attempt:

* ``spec:<id>``  -- the accepted :class:`~repro.service.jobs.JobSpec`
  (as its JSON form), written at admission;
* ``done:<id>``  -- the finished ``PairResult`` pickle;
* ``fail:<id>``  -- the failure record of an exhausted job.

On boot, :func:`load_job_records` folds the journal: a job with a
``done:``/``fail:`` record is terminal and served from the journal; a
``spec:`` without one is *resumed* -- re-enqueued for execution, where
the result cache usually answers instantly if the work had finished
but the outcome line was lost to the crash.

Unlike the grid's writer, appends here flow through the ambient fault
plan's ``jtear`` hook: a covered write first lands *torn* (truncated
mid-line, exactly what a power cut inside ``write(2)`` leaves), then
the writer verifies and repairs -- truncating the tear and rewriting
the full line. The loader independently tolerates a torn *final* line,
so both halves of the crash window are exercised by tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro import faults
from repro.errors import ConfigurationError
from repro.experiments.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    load_checkpoint,
)

__all__ = [
    "JOURNAL_FINGERPRINT",
    "JobJournal",
    "journal_note",
    "load_job_records",
]

#: Journal fingerprint: pins the journal to the service's record
#: layout. The simulator code version is deliberately *not* mixed in
#: here -- job ids already encode it, so a journal survives restarts
#: across deploys and stale jobs simply re-dedupe under their own ids.
JOURNAL_FINGERPRINT = "repro-service-v1"

_PREFIXES = ("spec", "done", "fail")


class JobJournal:
    """Append-only journal of job specs and outcomes.

    Wraps :class:`~repro.experiments.checkpoint.CheckpointWriter` for
    the header/validation contract but owns the append path, so the
    ``jtear`` chaos hook and its verify-and-repair can wrap every line.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._writer = CheckpointWriter(
            self.path, JOURNAL_FINGERPRINT, code_version="service"
        )
        self._writes = 0
        #: torn appends repaired over this journal's lifetime
        self.repaired = 0

    def _fd(self) -> int:
        fd = self._writer._fd
        if fd is None:
            raise ConfigurationError("job journal is closed")
        return fd

    def _append(self, obj: dict) -> None:
        line = (
            json.dumps(obj, separators=(",", ":"), sort_keys=True).encode(
                "utf-8"
            )
            + b"\n"
        )
        fd = self._fd()
        index = self._writes
        self._writes += 1
        plan = faults.current_plan()
        if plan.active and plan.tears_write(index):
            # Chaos: land the torn prefix first (the crash window a
            # power cut leaves), then verify-and-repair it.
            offset = os.fstat(fd).st_size
            os.write(fd, line[: max(len(line) // 2, 1)])
            os.fsync(fd)
            os.ftruncate(fd, offset)
            self.repaired += 1
        os.write(fd, line)
        os.fsync(fd)

    def _record(self, prefix: str, job_id: str, payload: object) -> None:
        self._append(
            CheckpointWriter._task_line("job", f"{prefix}:{job_id}", payload)
        )

    def record_spec(self, job_id: str, spec_json: dict) -> None:
        """Journal an accepted job's spec (its JSON form)."""
        self._record("spec", job_id, spec_json)

    def record_done(self, job_id: str, result: object) -> None:
        """Journal a finished job's result (pickled bit-identically)."""
        self._record("done", job_id, result)

    def record_fail(self, job_id: str, failure: dict) -> None:
        """Journal an exhausted job's failure record."""
        self._record("fail", job_id, failure)

    def note(self, payload: dict) -> None:
        """Journal an informational note (drain markers, resume info)."""
        self._append(
            {"v": CHECKPOINT_VERSION, "kind": "note", "note": payload}
        )

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def load_job_records(
    path: Union[str, Path],
) -> Tuple[Dict[str, dict], Dict[str, object], Dict[str, dict]]:
    """Fold a job journal into ``(specs, results, failures)`` by job id.

    Returns empty mappings for a missing file (a fresh service).
    Raises :class:`~repro.errors.ConfigurationError` for a journal
    written by something other than the service, or for corruption
    anywhere but the final line -- the same crash-explains-it contract
    the grid loader enforces.
    """
    journal = Path(path)
    if not journal.exists():
        return {}, {}, {}
    state = load_checkpoint(journal)
    if state.fingerprint != JOURNAL_FINGERPRINT:
        raise ConfigurationError(
            f"{journal} is not a service job journal (fingerprint "
            f"{state.fingerprint!r}); refusing to mix job state"
        )
    specs: Dict[str, dict] = {}
    results: Dict[str, object] = {}
    failures: Dict[str, dict] = {}
    buckets = {"spec": specs, "done": results, "fail": failures}
    for key, payload in state.tasks.items():
        prefix, sep, job_id = key.partition(":")
        if not sep or prefix not in _PREFIXES or not job_id:
            raise ConfigurationError(
                f"{journal}: unrecognized job record key {key!r}"
            )
        buckets[prefix][job_id] = payload
    return specs, results, failures


def journal_note(path: Union[str, Path], what: str) -> Optional[dict]:
    """The most recent note of kind ``what`` in a journal, if any."""
    journal = Path(path)
    if not journal.exists():
        return None
    state = load_checkpoint(journal)
    found = None
    for note in state.notes:
        if isinstance(note, dict) and note.get("what") == what:
            found = note
    return found
