"""The service's client: ``python -m repro submit|status|watch``.

A thin stdlib-only HTTP client (:mod:`http.client` -- no new
dependencies) plus the argument parsing for the three client
subcommands. Every function returns data and prints nothing except in
the CLI entry points, so tests drive the client exactly as users do.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from typing import Iterator, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ConfigurationError

__all__ = [
    "ServiceClient",
    "main_submit",
    "main_status",
    "main_watch",
]


class ServiceClient:
    """Talks to one service instance at ``url`` (e.g. http://host:port)."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ConfigurationError(
                f"service url must look like http://host:port, got {url!r}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"content-type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data.decode("utf-8")) if data else {}
            except ValueError as error:
                raise ConfigurationError(
                    f"service returned non-JSON for {path}: {error}"
                ) from error
            if not isinstance(decoded, dict):
                raise ConfigurationError(
                    f"service returned a non-object for {path}"
                )
            return response.status, decoded
        finally:
            conn.close()

    # -- API calls ----------------------------------------------------------

    def submit(self, spec: dict) -> Tuple[int, dict]:
        return self._request("POST", "/v1/jobs", spec)

    def status(self, job: str) -> Tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{job}")

    def result(self, job: str) -> Tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{job}/result")

    def stats(self) -> Tuple[int, dict]:
        return self._request("GET", "/v1/stats")

    def health(self) -> Tuple[int, dict]:
        return self._request("GET", "/healthz")

    def ready(self) -> Tuple[int, dict]:
        return self._request("GET", "/readyz")

    def watch(self, job: str) -> Iterator[dict]:
        """Stream status updates until the job reaches a terminal state.

        Yields each NDJSON line of ``/v1/jobs/<id>/events`` as a dict;
        the server closes the stream at the terminal transition.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job}/events")
            response = conn.getresponse()
            if response.status != 200:
                body = response.read().decode("utf-8", "replace").strip()
                raise ConfigurationError(
                    f"watch failed with HTTP {response.status}: {body}"
                )
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()


# ---------------------------------------------------------------------------
# CLI entry points (dispatched from repro.cli)
# ---------------------------------------------------------------------------


def _common_parser(name: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"python -m repro {name}", description=description
    )
    parser.add_argument(
        "--url",
        required=True,
        help="service base url, e.g. http://127.0.0.1:8100",
    )
    return parser


def _spec_from_args(args: argparse.Namespace) -> dict:
    spec: dict = {
        "tenant": args.tenant,
        "pair": args.pair,
        "scale": args.scale,
    }
    if args.levels:
        spec["config"] = {
            "fairness_levels": [float(text) for text in args.levels.split(",")]
        }
    if args.deadline is not None:
        spec["deadline_s"] = args.deadline
    return spec


def main_submit(arg_list: Optional[list] = None) -> int:
    parser = _common_parser("submit", "Submit one job to the service.")
    parser.add_argument("--tenant", required=True, help="tenant identifier")
    parser.add_argument(
        "--pair", required=True, help="benchmark pair, e.g. gcc:eon"
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("quick", "default", "paper"),
        help="base EvalConfig scale (default: quick)",
    )
    parser.add_argument(
        "--levels",
        default=None,
        help="comma-separated fairness levels override, e.g. 0,0.5",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="job deadline in seconds (propagates to task timeouts)",
    )
    parser.add_argument(
        "--wait",
        action="store_true",
        help="stream progress until the job finishes (implies watch)",
    )
    args = parser.parse_args(arg_list)
    client = ServiceClient(args.url)
    status, body = client.submit(_spec_from_args(args))
    print(json.dumps(body, indent=2))
    if status not in (200, 202):
        return 1
    if args.wait and not body.get("terminal"):
        for update in client.watch(str(body["job"])):
            print(json.dumps(update))
            body = update
    return 0 if body.get("state") in ("completed", "cached", "queued",
                                      "dispatched") else 1


def main_status(arg_list: Optional[list] = None) -> int:
    parser = _common_parser("status", "Show a job's state (or service stats).")
    parser.add_argument(
        "job", nargs="?", default=None,
        help="job id; omit for service-wide stats",
    )
    parser.add_argument(
        "--result",
        action="store_true",
        help="fetch the finished result payload instead of the state",
    )
    args = parser.parse_args(arg_list)
    client = ServiceClient(args.url)
    if args.job is None:
        status, body = client.stats()
    elif args.result:
        status, body = client.result(args.job)
    else:
        status, body = client.status(args.job)
    print(json.dumps(body, indent=2))
    return 0 if status == 200 else 1


def main_watch(arg_list: Optional[list] = None) -> int:
    parser = _common_parser(
        "watch", "Stream a job's state transitions until it finishes."
    )
    parser.add_argument("job", help="job id to watch")
    args = parser.parse_args(arg_list)
    client = ServiceClient(args.url)
    last = {}
    try:
        for update in client.watch(args.job):
            print(json.dumps(update))
            last = update
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0 if last.get("state") in ("completed", "cached") else 1
