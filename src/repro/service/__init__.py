"""The resilient simulation service (``python -m repro serve``).

The grid runner answers "run this whole sweep, now, in this process".
This package answers the other shape of demand: *many tenants, small
requests, over time* -- a long-running HTTP/JSON API that accepts
experiment specs, dedupes them against the on-disk result cache, queues
them fairly across tenants, and executes them on the same supervised
worker pool the grid uses. It is the paper's scheduling story replayed
one level up: the simulator arbitrates two SMT threads with deficit
counters (Eq. 9); the service arbitrates N tenants with deficit round
robin over the shared pool.

Robustness is the design center (``docs/SERVICE.md``):

* **admission control** -- per-tenant bounded queues; a full queue
  rejects with an explicit retry-after instead of buffering unbounded;
* **deadlines** -- a job's deadline propagates down to the supervisor's
  per-attempt wall-clock timeout;
* **retries** -- deterministic exponential backoff with seeded jitter
  (:func:`repro.experiments.supervisor.backoff_delay`);
* **circuit breaker** -- bursts of worker crashes/timeouts trip the
  dispatcher open and the service degrades to cache-only serving;
* **durability** -- every accepted job and every outcome is journaled
  (:mod:`repro.experiments.checkpoint` format); a killed-and-restarted
  service resumes unfinished jobs and serves finished ones bit-identically;
* **graceful drain** -- SIGTERM stops admission, finishes in-flight
  work, journals it, and exits 0.

The module split mirrors those concerns: :mod:`.jobs` (specs, ids,
validation), :mod:`.queueing` (DRR + admission), :mod:`.breaker`,
:mod:`.state` (the job journal), :mod:`.http` (a dependency-free
asyncio HTTP/1.1 server), :mod:`.app` (the composition), and
:mod:`.client` (the ``submit``/``status``/``watch`` CLI).
"""

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import Job, JobSpec, job_id, parse_job_spec
from repro.service.queueing import Admission, DrrScheduler
from repro.service.state import JobJournal, load_job_records

__all__ = [
    "Admission",
    "CircuitBreaker",
    "DrrScheduler",
    "Job",
    "JobJournal",
    "JobSpec",
    "ServiceApp",
    "ServiceConfig",
    "job_id",
    "load_job_records",
    "parse_job_spec",
]
