"""Per-tenant deficit-round-robin queueing with admission control.

The paper keeps two SMT threads fair with per-thread deficit counters
(Eq. 9): each thread earns quota every sample period, spends it as it
retires instructions, and carries the shortfall forward. The service
applies the identical discipline one level up. Every tenant owns a
FIFO queue and a deficit counter; each scheduling round visits the
backlogged tenants in a fixed rotation, credits each visit with one
``quantum``, and dispatches jobs while the tenant can pay one unit of
cost per job. A tenant that missed its turn (its queue was empty, or a
single large credit was not yet spendable) keeps the credit, exactly
like the paper's carried deficit -- so over any backlogged interval no
tenant is starved: with ``quantum=1`` the dispatch counts of any two
continuously-backlogged tenants differ by at most 1.

Admission is *bounded*: each tenant's queue holds at most ``depth``
jobs. A submission past that is rejected immediately with an explicit
``retry_after_s`` hint (HTTP 429) rather than buffered -- unbounded
queues convert overload into silent latency and eventual OOM, the two
failure modes a long-running service cannot have.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.service.jobs import Job

__all__ = ["Admission", "DrrScheduler"]


@dataclass(frozen=True)
class Admission:
    """The verdict on one submission attempt."""

    accepted: bool
    #: Queue depth after the decision (the tenant's backlog).
    depth: int
    #: The tenant's deficit counter at decision time.
    deficit: float
    #: Client backoff hint when rejected (None when accepted).
    retry_after_s: Optional[float] = None


@dataclass
class _TenantLane:
    queue: deque
    deficit: float = 0.0


class DrrScheduler:
    """Deficit round robin over per-tenant bounded FIFO queues.

    Single-threaded by design: the service serializes access under its
    state lock, so the scheduler itself carries no synchronization.
    """

    def __init__(
        self,
        *,
        depth: int = 64,
        quantum: float = 1.0,
        cost: float = 1.0,
        retry_after_base_s: float = 0.5,
    ) -> None:
        if depth < 1:
            raise ConfigurationError("queue depth must be >= 1")
        if quantum <= 0 or cost <= 0:
            raise ConfigurationError("quantum and cost must be positive")
        self.depth = depth
        self.quantum = quantum
        self.cost = cost
        self.retry_after_base_s = retry_after_base_s
        self._lanes: Dict[str, _TenantLane] = {}
        #: Fixed visit rotation: tenants in first-seen order. A stable
        #: order keeps scheduling a pure function of the submissions.
        self._rotation: List[str] = []
        self._cursor = 0

    # -- introspection -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Queued jobs across every tenant."""
        return sum(len(lane.queue) for lane in self._lanes.values())

    def tenant_depth(self, tenant: str) -> int:
        lane = self._lanes.get(tenant)
        return len(lane.queue) if lane else 0

    def tenant_deficit(self, tenant: str) -> float:
        lane = self._lanes.get(tenant)
        return lane.deficit if lane else 0.0

    def depths(self) -> Dict[str, int]:
        """Per-tenant backlog snapshot (the /v1/stats payload)."""
        return {
            tenant: len(lane.queue) for tenant, lane in self._lanes.items()
        }

    # -- admission ----------------------------------------------------------

    def offer(self, job: Job) -> Admission:
        """Admit ``job`` to its tenant's queue, or reject it.

        Rejection carries a retry hint proportional to the backlog the
        client is behind -- a deterministic function of queue state, so
        identical load patterns produce identical advice.
        """
        tenant = job.spec.tenant
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(queue=deque())
            self._lanes[tenant] = lane
            self._rotation.append(tenant)
        if len(lane.queue) >= self.depth:
            return Admission(
                accepted=False,
                depth=len(lane.queue),
                deficit=lane.deficit,
                retry_after_s=self.retry_after_base_s * len(lane.queue),
            )
        lane.queue.append(job)
        return Admission(
            accepted=True, depth=len(lane.queue), deficit=lane.deficit
        )

    def remove(self, job: Job) -> bool:
        """Drop a queued job (deadline expiry); True if it was queued."""
        lane = self._lanes.get(job.spec.tenant)
        if lane is None:
            return False
        try:
            lane.queue.remove(job)
        except ValueError:
            return False
        return True

    # -- scheduling ---------------------------------------------------------

    def next_job(self) -> Optional[Job]:
        """Dispatch the next job under DRR, or None if all queues idle.

        One call performs at most one full rotation: each backlogged
        lane visited earns ``quantum``; the first lane whose deficit
        covers ``cost`` pays and yields its head-of-line job. An empty
        lane spends nothing and keeps nothing (resetting an idle
        tenant's deficit is what stops a long-idle tenant from hoarding
        credit and then monopolizing the pool -- the same reason the
        paper resets its counters at enforcement-mode boundaries).
        """
        if not self._rotation:
            return None
        for _ in range(len(self._rotation)):
            tenant = self._rotation[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._rotation)
            lane = self._lanes[tenant]
            if not lane.queue:
                lane.deficit = 0.0
                continue
            lane.deficit += self.quantum
            if lane.deficit >= self.cost:
                lane.deficit -= self.cost
                return lane.queue.popleft()
        return None
