"""The service composition: queues, pool, breaker, journal, HTTP.

Two execution contexts cooperate here:

* the **asyncio event loop** (main thread) serves HTTP: admission,
  status/result reads, watch streams, health probes;
* the **dispatcher thread** owns the supervised
  :class:`~repro.experiments.supervisor.TaskPool`: it pulls jobs from
  the DRR scheduler while the breaker allows, pumps the pool, and
  applies settled outcomes.

All shared job state (the jobs table, the scheduler, the breaker, the
journal) is guarded by one lock; the pool itself is touched *only* by
the dispatcher thread, so supervision never contends with request
handling. Handlers hold the lock for microseconds (dict lookups, one
journal fsync on admission) -- the loop stays responsive while
simulations run.

Results never travel through service code paths that could change
them: a job's ``PairResult`` is computed by the same
:func:`~repro.experiments.runner.compute_pair` the grid uses, cached in
the same :class:`~repro.experiments.runner.ResultCache`, and journaled
as the same pickle -- so a result served after a crash, a retry storm,
or a breaker trip is bit-identical to one computed on a quiet day.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional

from repro import faults
from repro.errors import ConfigurationError
from repro.experiments.common import EvalConfig, PairResult
from repro.experiments.io import result_to_jsonable
from repro.experiments.runner import ResultCache, code_version
from repro.experiments.supervisor import (
    PoolEvent,
    SupervisionPolicy,
    TaskPool,
)
from repro.service import http
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import Job, JobSpec, job_id, parse_job_spec
from repro.service.queueing import DrrScheduler
from repro.service.state import JobJournal, load_job_records
from repro.telemetry import RUNNER as _TRACE_RUNNER
from repro.telemetry import current_sink
from repro.telemetry.events import job_event, queue_event
from repro.workloads.pairs import BenchmarkPair

__all__ = ["ServiceConfig", "ServiceApp", "run_service"]

#: Dispatcher pump wait per cycle (also the breaker's clock tick).
_PUMP_WAIT_S = 0.05

#: Watch streams poll job state at this cadence.
_WATCH_POLL_S = 0.05


def _execute_job(item: object) -> PairResult:
    """Top-level task callable the pool workers run (must pickle)."""
    pair, config = item
    from repro.experiments.runner import compute_pair

    return compute_pair(pair, config)


def _job_descriptor(item: object) -> tuple:
    pair, _config = item
    return "service_job", pair.label


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Worker processes in the shared pool.
    jobs: int = 1
    #: Per-tenant queue bound (admission control).
    queue_depth: int = 64
    #: DRR quantum (cost per job is 1).
    quantum: float = 1.0
    task_timeout: Optional[float] = None
    retries: int = 2
    retry_backoff: float = 0.0
    breaker_window: int = 8
    breaker_threshold: int = 4
    breaker_cooldown: int = 10
    journal: Optional[Path] = None
    cache_dir: Optional[Path] = None
    #: When set, the bound port is written here (CI/tests bind port 0).
    port_file: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("jobs must be a positive process count")
        if self.port < 0 or self.port > 65535:
            raise ConfigurationError("port must be in [0, 65535]")
        SupervisionPolicy(
            task_timeout=self.task_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
        )

    @property
    def policy(self) -> SupervisionPolicy:
        return SupervisionPolicy(
            task_timeout=self.task_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
        )


@dataclass
class _Dispatched:
    """Dispatcher-side record of one in-flight pool task."""

    job: Job


class ServiceApp:
    """The service's state machine, HTTP-independent and test-friendly.

    Everything observable over HTTP is callable directly:
    :meth:`submit`, :meth:`job_status`, :meth:`job_result`,
    :meth:`stats`. The HTTP layer is a thin translation.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self.jobs: Dict[str, Job] = {}
        self.scheduler = DrrScheduler(
            depth=config.queue_depth, quantum=config.quantum
        )
        self.breaker = CircuitBreaker(
            window=config.breaker_window,
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
        )
        self.cache = (
            ResultCache(config.cache_dir)
            if config.cache_dir is not None
            else None
        )
        self.journal = (
            JobJournal(config.journal) if config.journal is not None else None
        )
        self.pool = TaskPool(
            _execute_job,
            jobs=config.jobs,
            policy=config.policy,
            descriptor=_job_descriptor,
        )
        self.draining = False
        self.resumed_jobs = 0
        self._dispatch_seq = 0
        self._in_flight: Dict[int, _Dispatched] = {}
        self._dispatcher: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._drained = threading.Event()
        if config.journal is not None:
            self._resume(config.journal)

    # -- boot-time resume ---------------------------------------------------

    def _resume(self, path: Path) -> None:
        """Rebuild job state from an existing journal (crash restart)."""
        specs, results, failures = load_job_records(path)
        sink = current_sink()
        for jid, spec_json in specs.items():
            spec = parse_job_spec(spec_json)
            if jid in results:
                job = Job(
                    id=jid,
                    spec=spec,
                    state="completed",
                    detail="journal",
                    result=results[jid],
                )
            elif jid in failures:
                record = failures[jid]
                job = Job(
                    id=jid,
                    spec=spec,
                    state=str(record.get("state", "failed")),
                    detail=str(record.get("detail", "failed")),
                    attempts=int(record.get("attempts", 0)),
                )
            else:
                # Accepted but unfinished: re-enqueue. The result cache
                # usually answers instantly if the simulation finished
                # but the outcome line was lost to the crash.
                job = Job(id=jid, spec=spec, state="queued", detail="resumed")
                if spec.deadline_s is not None:
                    job.expires_at = time.monotonic() + spec.deadline_s
                cached = self._cache_load(spec)
                if cached is not None:
                    job.state = "cached"
                    job.detail = "result cache"
                    job.result = cached
                    if self.journal is not None:
                        self.journal.record_done(jid, cached)
                else:
                    self.scheduler.offer(job)
                self.resumed_jobs += 1
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(job_event("resumed", spec.tenant, jid))
            self.jobs[jid] = job
        if results or failures or specs:
            for jid, result in results.items():
                self._cache_store(self.jobs[jid].spec, result)

    # -- cache helpers ------------------------------------------------------

    def _cache_load(self, spec: JobSpec) -> Optional[PairResult]:
        if self.cache is None:
            return None
        return self.cache.load(spec.pair, spec.config)

    def _cache_store(self, spec: JobSpec, result: object) -> None:
        if self.cache is None or not isinstance(result, PairResult):
            return
        if self.cache.load(spec.pair, spec.config) is None:
            self.cache.store(spec.pair, spec.config, result)

    # -- admission (called from the event loop) -----------------------------

    def submit(self, payload: object) -> tuple:
        """Admit one submission body; ``(http_status, body, headers)``."""
        try:
            spec = parse_job_spec(payload)
        except ConfigurationError as error:
            return 400, {"error": str(error)}, {}
        jid = job_id(spec, code_version())
        sink = current_sink()
        with self._lock:
            existing = self.jobs.get(jid)
            if existing is not None:
                # Idempotent resubmission: one spec is one job.
                status = 200 if existing.terminal else 202
                return status, existing.to_json(), {}
            cached = self._cache_load(spec)
            if cached is not None:
                job = Job(
                    id=jid,
                    spec=spec,
                    state="cached",
                    detail="result cache",
                    result=cached,
                )
                self.jobs[jid] = job
                if self.journal is not None:
                    self.journal.record_spec(jid, spec.to_json())
                    self.journal.record_done(jid, cached)
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(job_event("cached", spec.tenant, jid))
                return 200, job.to_json(), {}
            if self.draining:
                return (
                    503,
                    {"error": "service is draining; resubmit elsewhere"},
                    {},
                )
            if self.breaker.state == "open":
                # Degraded mode: cache-only serving while the pool is
                # presumed unhealthy. Uncached work is refused with a
                # retry hint spanning the remaining cooldown.
                retry_after = self.breaker.cooldown * _PUMP_WAIT_S
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(
                        job_event(
                            "rejected", spec.tenant, jid,
                            detail="circuit open",
                        )
                    )
                return (
                    503,
                    {
                        "error": "circuit breaker open: cache-only serving",
                        "retry_after_s": retry_after,
                    },
                    {"retry-after": f"{retry_after:g}"},
                )
            job = Job(id=jid, spec=spec)
            if spec.deadline_s is not None:
                job.expires_at = time.monotonic() + spec.deadline_s
            admission = self.scheduler.offer(job)
            if not admission.accepted:
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(
                        queue_event(
                            "reject", spec.tenant,
                            admission.depth, admission.deficit,
                        )
                    )
                    sink.emit(
                        job_event(
                            "rejected", spec.tenant, jid,
                            detail="queue full",
                        )
                    )
                retry_after = admission.retry_after_s or 0.0
                return (
                    429,
                    {
                        "error": (
                            f"tenant {spec.tenant} queue is full "
                            f"({admission.depth} jobs)"
                        ),
                        "retry_after_s": retry_after,
                    },
                    {"retry-after": f"{retry_after:g}"},
                )
            self.jobs[jid] = job
            if self.journal is not None:
                self.journal.record_spec(jid, spec.to_json())
            if sink.wants(_TRACE_RUNNER):
                sink.emit(
                    queue_event(
                        "enqueue", spec.tenant,
                        admission.depth, admission.deficit,
                    )
                )
                sink.emit(job_event("submitted", spec.tenant, jid))
            return 202, job.to_json(), {}

    # -- reads --------------------------------------------------------------

    def job_status(self, jid: str) -> Optional[dict]:
        with self._lock:
            job = self.jobs.get(jid)
            return job.to_json() if job is not None else None

    def job_result(self, jid: str) -> tuple:
        """``(http_status, body)`` for the result endpoint."""
        with self._lock:
            job = self.jobs.get(jid)
            if job is None:
                return 404, {"error": f"unknown job {jid}"}
            if job.state in ("completed", "cached"):
                return 200, {
                    "job": jid,
                    "state": job.state,
                    "result": result_to_jsonable(job.result),
                }
            if job.terminal:
                return 409, {
                    "error": f"job {jid} ended in state {job.state}",
                    "state": job.state,
                    "detail": job.detail,
                }
            return 409, {
                "error": f"job {jid} is not finished",
                "state": job.state,
            }

    def stats(self) -> dict:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "jobs": states,
                "queues": self.scheduler.depths(),
                "backlog": self.scheduler.backlog,
                "breaker": {
                    "state": self.breaker.state,
                    "failures": self.breaker.failures,
                },
                "pool": {
                    "workers_alive": self.pool.alive_workers(),
                    "in_flight": self.pool.in_flight,
                },
                "draining": self.draining,
                "resumed_jobs": self.resumed_jobs,
            }

    def health(self) -> dict:
        return {"status": "ok"}

    def readiness(self) -> tuple:
        """``(http_status, body)`` for /readyz."""
        with self._lock:
            dispatcher_alive = (
                self._dispatcher is not None and self._dispatcher.is_alive()
            )
            pool_ok = self.pool.idle or self.pool.alive_workers() > 0
            ready = dispatcher_alive and pool_ok and not self.draining
            body = {
                "status": "ready" if ready else "unready",
                "dispatcher_alive": dispatcher_alive,
                "pool_workers": self.pool.alive_workers(),
                "draining": self.draining,
                "breaker": self.breaker.state,
            }
            return (200 if ready else 503), body

    # -- the dispatcher thread ---------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._dispatcher is not None:
            return
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def drain(self) -> None:
        """Stop admission; the dispatcher finishes in-flight work."""
        with self._lock:
            self.draining = True

    def stop(self) -> None:
        """Drain, wait for the dispatcher, journal the drain, close."""
        self.drain()
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
        self.pool.close()
        if self.journal is not None:
            with self._lock:
                self.journal.note(
                    {
                        "what": "drain",
                        "in_flight": len(self._in_flight),
                        "backlog": self.scheduler.backlog,
                    }
                )
                self.journal.close()
                self.journal = None

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                self._expire_queued()
                if not self.draining:
                    self._fill_pool()
                # Drain waits for the pool to go fully idle -- a retry
                # sitting out its backoff window is still in flight.
                stop_now = self._stop.is_set() and self.pool.idle
            if stop_now:
                self._drained.set()
                return
            events = self.pool.pump(_PUMP_WAIT_S)
            with self._lock:
                for event in events:
                    self._apply(event)
                self.breaker.on_cycle()

    def _expire_queued(self) -> None:
        now = time.monotonic()
        sink = current_sink()
        for job in list(self.jobs.values()):
            if (
                job.state == "queued"
                and job.expires_at is not None
                and now >= job.expires_at
            ):
                if not self.scheduler.remove(job):
                    continue
                job.state = "expired"
                job.detail = "deadline passed before dispatch"
                if self.journal is not None:
                    self.journal.record_fail(
                        job.id,
                        {
                            "state": "expired",
                            "detail": job.detail,
                            "attempts": job.attempts,
                        },
                    )
                if sink.wants(_TRACE_RUNNER):
                    sink.emit(
                        job_event("expired", job.spec.tenant, job.id)
                    )

    def _fill_pool(self) -> None:
        sink = current_sink()
        while (
            self.pool.in_flight + self.pool.pending < self.config.jobs
            and self.breaker.allows_dispatch()
        ):
            job = self.scheduler.next_job()
            if job is None:
                return
            timeout = self.config.task_timeout
            if job.expires_at is not None:
                remaining = job.expires_at - time.monotonic()
                if remaining <= 0:
                    job.state = "expired"
                    job.detail = "deadline passed before dispatch"
                    if sink.wants(_TRACE_RUNNER):
                        sink.emit(
                            job_event("expired", job.spec.tenant, job.id)
                        )
                    continue
                timeout = (
                    remaining
                    if timeout is None
                    else min(timeout, remaining)
                )
            index = self._dispatch_seq
            self._dispatch_seq += 1
            self._in_flight[index] = _Dispatched(job=job)
            job.state = "dispatched"
            job.detail = None
            self.pool.submit(
                index, (job.spec.pair, job.spec.config), timeout=timeout
            )
            self.breaker.on_dispatch()
            if sink.wants(_TRACE_RUNNER):
                sink.emit(
                    queue_event(
                        "dispatch",
                        job.spec.tenant,
                        self.scheduler.tenant_depth(job.spec.tenant),
                        self.scheduler.tenant_deficit(job.spec.tenant),
                    )
                )
                sink.emit(job_event("dispatched", job.spec.tenant, job.id))

    def _apply(self, event: PoolEvent) -> None:
        entry = self._in_flight.get(event.index)
        if entry is None:  # pragma: no cover - pool/app accounting skew
            return
        job = entry.job
        sink = current_sink()
        if event.kind == "retry":
            job.attempts = event.attempt - 1
            job.detail = (
                f"attempt {event.attempt - 1} {event.reason}; retrying"
            )
            self.breaker.record(event.reason)
            return
        del self._in_flight[event.index]
        if event.kind == "done":
            job.attempts += 1
            job.state = "completed"
            job.detail = None
            job.result = event.result
            self._cache_store(job.spec, event.result)
            if self.journal is not None:
                self.journal.record_done(job.id, event.result)
            self.breaker.record(None)
            if sink.wants(_TRACE_RUNNER):
                sink.emit(job_event("completed", job.spec.tenant, job.id))
            return
        failure = event.failure
        job.attempts = failure.attempts if failure is not None else job.attempts
        job.state = "failed"
        job.detail = (
            f"{failure.reason}: {failure.message}"
            if failure is not None
            else event.reason
        )
        if self.journal is not None:
            self.journal.record_fail(
                job.id,
                {
                    "state": "failed",
                    "detail": job.detail,
                    "attempts": job.attempts,
                },
            )
        self.breaker.record(event.reason or (failure.reason if failure else None))
        if sink.wants(_TRACE_RUNNER):
            sink.emit(
                job_event(
                    "failed", job.spec.tenant, job.id, detail=job.detail
                )
            )


# ---------------------------------------------------------------------------
# HTTP wiring
# ---------------------------------------------------------------------------


def _router(app: ServiceApp) -> http.Router:
    router = http.Router()

    async def submit(request: http.Request) -> http.Response:
        try:
            payload = request.json()
        except ValueError as error:
            return http.error_response(400, f"bad JSON body: {error}")
        status, body, headers = app.submit(payload)
        return http.json_response(status, body, headers)

    async def status(request: http.Request) -> http.Response:
        body = app.job_status(request.params["jid"])
        if body is None:
            return http.error_response(
                404, f"unknown job {request.params['jid']}"
            )
        return http.json_response(200, body)

    async def result(request: http.Request) -> http.Response:
        code, body = app.job_result(request.params["jid"])
        return http.json_response(code, body)

    async def events(request: http.Request) -> http.Response:
        jid = request.params["jid"]
        if app.job_status(jid) is None:
            return http.error_response(404, f"unknown job {jid}")

        async def stream() -> AsyncIterator[bytes]:
            last: Optional[str] = None
            while True:
                body = app.job_status(jid)
                if body is None:  # pragma: no cover - jobs are never dropped
                    return
                line = json.dumps(body, separators=(",", ":"))
                if line != last:
                    last = line
                    yield line.encode("utf-8") + b"\n"
                if body["terminal"]:
                    return
                await asyncio.sleep(_WATCH_POLL_S)

        return http.Response(
            status=200, content_type="application/x-ndjson", stream=stream()
        )

    async def stats(request: http.Request) -> http.Response:
        return http.json_response(200, app.stats())

    async def healthz(request: http.Request) -> http.Response:
        return http.json_response(200, app.health())

    async def readyz(request: http.Request) -> http.Response:
        code, body = app.readiness()
        return http.json_response(code, body)

    router.add("POST", "/v1/jobs", submit)
    router.add("GET", "/v1/jobs/{jid}", status)
    router.add("GET", "/v1/jobs/{jid}/result", result)
    router.add("GET", "/v1/jobs/{jid}/events", events)
    router.add("GET", "/v1/stats", stats)
    router.add("GET", "/healthz", healthz)
    router.add("GET", "/readyz", readyz)
    return router


async def _serve(app: ServiceApp) -> int:
    router = _router(app)
    request_counter = {"n": 0}
    plan = faults.current_plan()

    async def pre_handler(request: http.Request) -> None:
        delay = plan.stall_seconds(request.index)
        if delay > 0:
            # Slow-client chaos: this coroutine stalls; every other
            # connection keeps being served concurrently.
            await asyncio.sleep(delay)

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        index = request_counter["n"]
        request_counter["n"] += 1
        await http.serve_connection(
            router, reader, writer, index=index, pre_handler=pre_handler
        )

    server = await asyncio.start_server(
        on_connection, app.config.host, app.config.port
    )
    port = server.sockets[0].getsockname()[1]
    if app.config.port_file is not None:
        app.config.port_file.parent.mkdir(parents=True, exist_ok=True)
        app.config.port_file.write_text(f"{port}\n")
    app.start()

    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, shutdown.set)
    print(
        f"[serve] listening on http://{app.config.host}:{port} "
        f"(pool={app.config.jobs}, depth={app.config.queue_depth}, "
        f"resumed={app.resumed_jobs})",
        flush=True,
    )
    await shutdown.wait()
    print("[serve] drain: admission closed, finishing in-flight jobs",
          flush=True)
    server.close()
    await server.wait_closed()
    # stop() joins the dispatcher (it exits once in-flight work is
    # done), closes the pool, and journals the drain marker.
    await asyncio.to_thread(app.stop)
    print("[serve] drained cleanly", flush=True)
    return 0


def run_service(config: ServiceConfig) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code."""
    app = ServiceApp(config)
    return asyncio.run(_serve(app))
