"""A dependency-free asyncio HTTP/1.1 layer for the service.

The repository's no-new-dependencies rule covers the service too, so
this module implements the sliver of HTTP/1.1 the job API needs
directly on :func:`asyncio.start_server`: request-line + header
parsing, ``Content-Length`` bodies, JSON responses, NDJSON streaming
(for ``watch``), and ``connection: close`` semantics (every exchange is
one connection; the clients the service ships are the CLI and tests,
not browsers holding keep-alive pools).

Handlers are async callables ``(Request) -> Response``; routing is a
list of ``(method, pattern, handler)`` with ``{name}`` path captures.
Anything malformed is answered with a JSON error body -- the server
never lets a bad request take the process down.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

__all__ = ["Request", "Response", "Router", "json_response", "error_response"]

#: Request bodies past this are rejected (413) before being buffered.
MAX_BODY_BYTES = 1 << 20

#: Header section bound: requests are tiny; anything huge is abuse.
_MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    #: ``{name}`` captures from the matched route pattern.
    params: Dict[str, str] = field(default_factory=dict)
    #: Arrival order of this request at the server (0-based); the
    #: index the ``stall`` chaos fault keys on.
    index: int = 0

    def json(self) -> object:
        """The body decoded as JSON (raises ``ValueError`` on garbage)."""
        if not self.body:
            raise ValueError("empty request body")
        return json.loads(self.body.decode("utf-8"))


@dataclass
class Response:
    """One response: status + headers + either a body or a stream."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: When set, the body is streamed chunk by chunk (NDJSON) and the
    #: connection closes at exhaustion; ``body`` is ignored.
    stream: Optional[AsyncIterator[bytes]] = None


def json_response(
    status: int, payload: object, headers: Optional[Dict[str, str]] = None
) -> Response:
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False)
    return Response(
        status=status,
        body=body.encode("utf-8") + b"\n",
        headers=dict(headers or {}),
    )


def error_response(
    status: int, message: str, headers: Optional[Dict[str, str]] = None
) -> Response:
    return json_response(status, {"error": message}, headers)


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Method + path-pattern routing with ``{name}`` captures."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, re.Pattern, Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        regex = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], bool]:
        """``(handler, params, path_known)`` for one request."""
        path_known = False
        for route_method, regex, handler in self._routes:
            match = regex.match(path)
            if not match:
                continue
            path_known = True
            if route_method == method.upper():
                return handler, match.groupdict(), True
        return None, {}, path_known

    async def dispatch(self, request: Request) -> Response:
        handler, params, path_known = self.resolve(
            request.method, request.path
        )
        if handler is None:
            if path_known:
                return error_response(405, f"method {request.method} not allowed")
            return error_response(404, f"no route for {request.path}")
        request.params = params
        return await handler(request)


async def _read_request(
    reader: asyncio.StreamReader, index: int
) -> Optional[Request]:
    """Parse one request off the wire; None on a closed/empty socket."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {request_line!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    else:
        raise ValueError("too many request headers")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ValueError(f"bad content-length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"content-length {length} out of bounds")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method, path=path, headers=headers, body=body, index=index
    )


def _head(response: Response, content_length: Optional[int]) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "content-type": response.content_type,
        "connection": "close",
        **{name.lower(): value for name, value in response.headers.items()},
    }
    if content_length is not None:
        headers["content-length"] = str(content_length)
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    if response.stream is None:
        writer.write(_head(response, len(response.body)))
        writer.write(response.body)
        await writer.drain()
        return
    # Streamed NDJSON: no content-length; the close delimits the body.
    writer.write(_head(response, None))
    await writer.drain()
    async for chunk in response.stream:
        writer.write(chunk)
        await writer.drain()


async def serve_connection(
    router: Router,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    index: int,
    pre_handler: Optional[Callable[[Request], Awaitable[None]]] = None,
) -> None:
    """Serve one connection: one request, one response, close.

    ``pre_handler`` runs after parsing and before dispatch -- the hook
    the service uses to apply slow-client ``stall`` chaos without the
    HTTP layer knowing about fault plans.
    """
    try:
        try:
            request = await _read_request(reader, index)
        except (ValueError, asyncio.IncompleteReadError) as error:
            await _write_response(
                writer, error_response(400, f"bad request: {error}")
            )
            return
        if request is None:
            return
        if pre_handler is not None:
            await pre_handler(request)
        try:
            response = await router.dispatch(request)
        except Exception as error:  # one request must not kill the server
            response = error_response(
                500, f"{type(error).__name__}: {error}"
            )
        await _write_response(writer, response)
    except (ConnectionError, BrokenPipeError):
        pass  # client went away mid-response; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
